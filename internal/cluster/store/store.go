// Package store provides the versioned, watchable, in-memory object store
// backing the QRIO API server — the role etcd plays under a Kubernetes API
// server. Every mutation bumps a monotonically increasing resource version
// and is broadcast to watchers, giving controllers, the scheduler and
// kubelets level- and edge-triggered views of cluster state.
//
// The store is hash-partitioned into shards, each with its own lock, so
// mutations of different objects proceed in parallel — the single global
// mutex was the contention point under batched dispatch. Resource versions
// come from one atomic counter shared by every shard, so versions stay
// globally unique and per-key monotone (a key always lives on one shard,
// and its version is assigned under that shard's lock). Watchers receive
// one merged stream: events for the same key arrive in version order;
// events for different keys may interleave out of version order, exactly
// like a Kubernetes watch across resources.
package store

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// EventType classifies a watch event.
type EventType string

const (
	Added    EventType = "ADDED"
	Modified EventType = "MODIFIED"
	Deleted  EventType = "DELETED"
)

// WatchEvent is one change notification.
type WatchEvent[T any] struct {
	Type    EventType
	Object  T
	Version int64
}

// DefaultShards is the shard count used by New. Sixteen keeps per-shard
// maps small on the paper's 100-node fleet while leaving headroom for
// concurrent writers on many-core hosts.
const DefaultShards = 16

// shard is one lock-protected partition of the key space.
type shard[T any] struct {
	mu       sync.RWMutex
	items    map[string]T
	versions map[string]int64
}

// Store is a thread-safe, versioned map of named objects of one kind.
// DeepCopy isolation: objects are copied on the way in and out, so callers
// can never mutate stored state except through Update.
type Store[T any] struct {
	shards   []shard[T]
	version  atomic.Int64
	deepCopy func(T) T
	name     func(T) string

	watchMu  sync.RWMutex
	watchers map[int]chan WatchEvent[T]
	nextWID  int

	// hooks are synchronous per-mutation callbacks (see OnEvent). They are
	// registered at construction time and never mutated afterwards, so
	// mutation paths read them without additional locking.
	hooks []func(WatchEvent[T])
}

// New creates a store for objects of type T with DefaultShards partitions.
// deepCopy must return an independent copy; name must return the object key.
func New[T any](deepCopy func(T) T, name func(T) string) *Store[T] {
	return NewSharded(deepCopy, name, DefaultShards)
}

// NewSharded creates a store with an explicit shard count (minimum 1).
func NewSharded[T any](deepCopy func(T) T, name func(T) string, shards int) *Store[T] {
	if shards < 1 {
		shards = 1
	}
	s := &Store[T]{
		shards:   make([]shard[T], shards),
		deepCopy: deepCopy,
		name:     name,
		watchers: make(map[int]chan WatchEvent[T]),
	}
	for i := range s.shards {
		s.shards[i].items = make(map[string]T)
		s.shards[i].versions = make(map[string]int64)
	}
	return s
}

// shardFor maps a key to its shard (FNV-1a).
func (s *Store[T]) shardFor(key string) *shard[T] {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[h%uint32(len(s.shards))]
}

// OnEvent registers a synchronous hook invoked for every mutation, under
// the mutated shard's lock and before watchers are notified — the seam
// incremental indexes (the pending-job queue, the event-by-About index)
// hang off. Hooks must be registered before the store is shared between
// goroutines, must not call back into this store, and may retain ev.Object
// (it is a private deep copy).
func (s *Store[T]) OnEvent(fn func(ev WatchEvent[T])) {
	s.hooks = append(s.hooks, fn)
}

// ErrNotFound is returned for missing objects.
type ErrNotFound struct{ Name string }

func (e ErrNotFound) Error() string { return fmt.Sprintf("store: %q not found", e.Name) }

// ErrExists is returned when creating a duplicate.
type ErrExists struct{ Name string }

func (e ErrExists) Error() string { return fmt.Sprintf("store: %q already exists", e.Name) }

// Create inserts a new object and returns its resource version.
func (s *Store[T]) Create(obj T) (int64, error) {
	key := s.name(obj)
	if key == "" {
		return 0, fmt.Errorf("store: object has empty name")
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.items[key]; ok {
		return 0, ErrExists{key}
	}
	v := s.version.Add(1)
	sh.items[key] = s.deepCopy(obj)
	sh.versions[key] = v
	s.emitLocked(WatchEvent[T]{Type: Added, Object: s.deepCopy(obj), Version: v})
	return v, nil
}

// Get returns a copy of the named object.
func (s *Store[T]) Get(name string) (T, int64, error) {
	sh := s.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	obj, ok := sh.items[name]
	if !ok {
		var zero T
		return zero, 0, ErrNotFound{name}
	}
	return s.deepCopy(obj), sh.versions[name], nil
}

// List returns copies of all objects (order unspecified, never nil — an
// empty store lists as an empty JSON array, not null).
func (s *Store[T]) List() []T {
	out := make([]T, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, obj := range sh.items {
			out = append(out, s.deepCopy(obj))
		}
		sh.mu.RUnlock()
	}
	return out
}

// ListFunc returns copies of the objects keep accepts. The predicate runs
// against the store's internal object under the shard read lock, so
// rejected objects are never deep-copied — the cheap path for phase- or
// owner-filtered scans. keep must not mutate or retain its argument and
// must not call back into the store.
func (s *Store[T]) ListFunc(keep func(T) bool) []T {
	out := make([]T, 0, 8)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, obj := range sh.items {
			if keep(obj) {
				out = append(out, s.deepCopy(obj))
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Range iterates the store without copying, passing each internal object
// and its resource version to fn under the shard read lock; returning
// false stops the walk. Like ListFunc's predicate, fn must not mutate or
// retain the object and must not call back into the store. Iteration
// across shards is not a point-in-time snapshot: mutations racing the walk
// may or may not be observed.
func (s *Store[T]) Range(fn func(obj T, version int64) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key, obj := range sh.items {
			if !fn(obj, sh.versions[key]) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Len returns the object count.
func (s *Store[T]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.items)
		sh.mu.RUnlock()
	}
	return n
}

// Update applies mutate to the named object atomically. The callback
// receives a private copy; returning an error aborts without change. The
// callback runs under the object's shard lock, so it must not call back
// into this store (other stores are fine only if no lock cycle exists —
// prefer hoisting cross-store reads out of the callback).
func (s *Store[T]) Update(name string, mutate func(T) (T, error)) (T, int64, error) {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj, ok := sh.items[name]
	if !ok {
		var zero T
		return zero, 0, ErrNotFound{name}
	}
	next, err := mutate(s.deepCopy(obj))
	if err != nil {
		var zero T
		return zero, 0, err
	}
	if s.name(next) != name {
		var zero T
		return zero, 0, fmt.Errorf("store: update may not rename %q to %q", name, s.name(next))
	}
	v := s.version.Add(1)
	sh.items[name] = s.deepCopy(next)
	sh.versions[name] = v
	s.emitLocked(WatchEvent[T]{Type: Modified, Object: s.deepCopy(next), Version: v})
	return next, v, nil
}

// Delete removes the named object.
func (s *Store[T]) Delete(name string) error {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj, ok := sh.items[name]
	if !ok {
		return ErrNotFound{name}
	}
	delete(sh.items, name)
	delete(sh.versions, name)
	v := s.version.Add(1)
	s.emitLocked(WatchEvent[T]{Type: Deleted, Object: s.deepCopy(obj), Version: v})
	return nil
}

// Watch returns a buffered channel of future change events plus a cancel
// function. The channel merges every shard's stream. Watchers that fall
// more than the buffer behind lose events — consumers are expected to
// re-List on their own cadence (level-triggered reconciliation), exactly
// as Kubernetes clients do.
func (s *Store[T]) Watch(buffer int) (<-chan WatchEvent[T], func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan WatchEvent[T], buffer)
	s.watchMu.Lock()
	id := s.nextWID
	s.nextWID++
	s.watchers[id] = ch
	s.watchMu.Unlock()
	cancel := func() {
		s.watchMu.Lock()
		if c, ok := s.watchers[id]; ok {
			delete(s.watchers, id)
			close(c)
		}
		s.watchMu.Unlock()
	}
	return ch, cancel
}

// emitLocked runs hooks and broadcasts to watchers while the mutated
// shard's lock is held, dropping events for slow consumers. Holding the
// shard lock across delivery keeps same-key events ordered.
func (s *Store[T]) emitLocked(ev WatchEvent[T]) {
	for _, hook := range s.hooks {
		hook(ev)
	}
	s.watchMu.RLock()
	for _, ch := range s.watchers {
		select {
		case ch <- ev:
		default: // watcher too slow: drop, it must re-List
		}
	}
	s.watchMu.RUnlock()
}

// Version returns the store's latest resource version.
func (s *Store[T]) Version() int64 {
	return s.version.Load()
}
