// Package store provides the versioned, watchable, in-memory object store
// backing the QRIO API server — the role etcd plays under a Kubernetes API
// server. Every mutation bumps a monotonically increasing resource version
// and is broadcast to watchers, giving controllers, the scheduler and
// kubelets level- and edge-triggered views of cluster state.
//
// The store is hash-partitioned into shards, each with its own lock, so
// mutations of different objects proceed in parallel — the single global
// mutex was the contention point under batched dispatch. Resource versions
// come from one atomic counter shared by every shard, so versions stay
// globally unique and per-key monotone (a key always lives on one shard,
// and its version is assigned under that shard's lock). Watchers receive
// one merged stream: events for the same key arrive in version order;
// events for different keys may interleave out of version order, exactly
// like a Kubernetes watch across resources.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// EventType classifies a watch event.
type EventType string

const (
	Added    EventType = "ADDED"
	Modified EventType = "MODIFIED"
	Deleted  EventType = "DELETED"
)

// WatchEvent is one change notification. Shard is the index of the shard
// that emitted it — the coordinate consumers track to build resume marks
// (per-key and per-shard event order is monotone; cross-shard order is
// not, so exact resumption needs one high-water mark per shard).
type WatchEvent[T any] struct {
	Type    EventType
	Object  T
	Version int64
	Shard   int
}

// DefaultShards is the shard count used by New. Sixteen keeps per-shard
// maps small on the paper's 100-node fleet while leaving headroom for
// concurrent writers on many-core hosts.
const DefaultShards = 16

// DefaultJournalCap bounds how many recent events each shard's version
// journal retains for watch resumption. A dropped SSE client typically
// reconnects within seconds; at cluster mutation rates that is far fewer
// events than this, so resume almost always replays instead of forcing a
// full re-List.
const DefaultJournalCap = 1024

// ErrCompacted signals that a WatchFrom position has aged out of the
// version journal: events after fromVersion were already evicted, so an
// exact replay is impossible and the caller must fall back to a full
// re-List (the Kubernetes "410 Gone" contract).
var ErrCompacted = errors.New("store: watch history compacted; re-List required")

// shard is one lock-protected partition of the key space.
type shard[T any] struct {
	mu       sync.RWMutex
	items    map[string]T
	versions map[string]int64
	// journal is the shard's bounded ring of recent watch events, in
	// version order (versions are assigned under this shard's lock).
	// evictedThrough is the highest version dropped from the ring — a
	// WatchFrom below it cannot replay exactly and gets ErrCompacted.
	// lastVersion is the shard's emission high-water mark.
	journal        []WatchEvent[T]
	evictedThrough int64
	lastVersion    int64
}

// Store is a thread-safe, versioned map of named objects of one kind.
// DeepCopy isolation: objects are copied on the way in and out, so callers
// can never mutate stored state except through Update.
type Store[T any] struct {
	shards     []shard[T]
	version    atomic.Int64
	deepCopy   func(T) T
	name       func(T) string
	journalCap int

	watchMu  sync.RWMutex
	watchers map[int]*watcher[T]
	nextWID  int

	// hooks are synchronous per-mutation callbacks (see OnEvent). They are
	// registered at construction time and never mutated afterwards, so
	// mutation paths read them without additional locking.
	hooks []func(WatchEvent[T])
}

// New creates a store for objects of type T with DefaultShards partitions.
// deepCopy must return an independent copy; name must return the object key.
func New[T any](deepCopy func(T) T, name func(T) string) *Store[T] {
	return NewSharded(deepCopy, name, DefaultShards)
}

// NewSharded creates a store with an explicit shard count (minimum 1).
func NewSharded[T any](deepCopy func(T) T, name func(T) string, shards int) *Store[T] {
	if shards < 1 {
		shards = 1
	}
	s := &Store[T]{
		shards:     make([]shard[T], shards),
		deepCopy:   deepCopy,
		name:       name,
		journalCap: DefaultJournalCap,
		watchers:   make(map[int]*watcher[T]),
	}
	for i := range s.shards {
		s.shards[i].items = make(map[string]T)
		s.shards[i].versions = make(map[string]int64)
	}
	return s
}

// watcher is one registered watch consumer. Plain Watch consumers keep
// the historical drop-on-overflow contract (they re-List on their own
// cadence); WatchFrom consumers instead have their channel closed on
// overflow, turning a silent gap into an explicit stream break the client
// heals by resuming from its last token.
type watcher[T any] struct {
	ch          chan WatchEvent[T]
	closeOnDrop bool
}

// SetJournalCap resizes the per-shard version journal (minimum 1 event
// per shard). Like OnEvent, it must be called before the store is shared
// between goroutines; tests shrink it to force compaction cheaply.
func (s *Store[T]) SetJournalCap(n int) {
	if n < 1 {
		n = 1
	}
	s.journalCap = n
}

// shardIndex maps a key to its shard index (FNV-1a).
func (s *Store[T]) shardIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(s.shards)))
}

// shardFor maps a key to its shard.
func (s *Store[T]) shardFor(key string) *shard[T] {
	return &s.shards[s.shardIndex(key)]
}

// Shards returns the store's shard count — the length of a resume-mark
// vector (see Marks and WatchFrom).
func (s *Store[T]) Shards() int { return len(s.shards) }

// Marks snapshots the per-shard emission high-water marks — the "from
// now" resume position. The snapshot is not atomic across shards; each
// mark can only err low, which makes a resume replay an event the caller
// also saw live (deduped by version), never skip one.
func (s *Store[T]) Marks() []int64 {
	out := make([]int64, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out[i] = sh.lastVersion
		sh.mu.RUnlock()
	}
	return out
}

// OnEvent registers a synchronous hook invoked for every mutation, under
// the mutated shard's lock and before watchers are notified — the seam
// incremental indexes (the pending-job queue, the event-by-About index)
// hang off. Hooks must be registered before the store is shared between
// goroutines, must not call back into this store, and may retain ev.Object
// (it is a private deep copy).
func (s *Store[T]) OnEvent(fn func(ev WatchEvent[T])) {
	s.hooks = append(s.hooks, fn)
}

// ErrNotFound is returned for missing objects.
type ErrNotFound struct{ Name string }

func (e ErrNotFound) Error() string { return fmt.Sprintf("store: %q not found", e.Name) }

// ErrExists is returned when creating a duplicate.
type ErrExists struct{ Name string }

func (e ErrExists) Error() string { return fmt.Sprintf("store: %q already exists", e.Name) }

// Create inserts a new object and returns its resource version.
func (s *Store[T]) Create(obj T) (int64, error) {
	key := s.name(obj)
	if key == "" {
		return 0, fmt.Errorf("store: object has empty name")
	}
	idx := s.shardIndex(key)
	sh := &s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.items[key]; ok {
		return 0, ErrExists{key}
	}
	v := s.version.Add(1)
	sh.items[key] = s.deepCopy(obj)
	sh.versions[key] = v
	s.emitLocked(idx, WatchEvent[T]{Type: Added, Object: s.deepCopy(obj), Version: v, Shard: idx})
	return v, nil
}

// Get returns a copy of the named object.
func (s *Store[T]) Get(name string) (T, int64, error) {
	sh := s.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	obj, ok := sh.items[name]
	if !ok {
		var zero T
		return zero, 0, ErrNotFound{name}
	}
	return s.deepCopy(obj), sh.versions[name], nil
}

// List returns copies of all objects (order unspecified, never nil — an
// empty store lists as an empty JSON array, not null).
func (s *Store[T]) List() []T {
	out := make([]T, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, obj := range sh.items {
			out = append(out, s.deepCopy(obj))
		}
		sh.mu.RUnlock()
	}
	return out
}

// ListFunc returns copies of the objects keep accepts. The predicate runs
// against the store's internal object under the shard read lock, so
// rejected objects are never deep-copied — the cheap path for phase- or
// owner-filtered scans. keep must not mutate or retain its argument and
// must not call back into the store.
func (s *Store[T]) ListFunc(keep func(T) bool) []T {
	out := make([]T, 0, 8)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, obj := range sh.items {
			if keep(obj) {
				out = append(out, s.deepCopy(obj))
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Range iterates the store without copying, passing each internal object
// and its resource version to fn under the shard read lock; returning
// false stops the walk. Like ListFunc's predicate, fn must not mutate or
// retain the object and must not call back into the store. Iteration
// across shards is not a point-in-time snapshot: mutations racing the walk
// may or may not be observed.
func (s *Store[T]) Range(fn func(obj T, version int64) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key, obj := range sh.items {
			if !fn(obj, sh.versions[key]) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Len returns the object count.
func (s *Store[T]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.items)
		sh.mu.RUnlock()
	}
	return n
}

// Update applies mutate to the named object atomically. The callback
// receives a private copy; returning an error aborts without change. The
// callback runs under the object's shard lock, so it must not call back
// into this store (other stores are fine only if no lock cycle exists —
// prefer hoisting cross-store reads out of the callback).
func (s *Store[T]) Update(name string, mutate func(T) (T, error)) (T, int64, error) {
	idx := s.shardIndex(name)
	sh := &s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj, ok := sh.items[name]
	if !ok {
		var zero T
		return zero, 0, ErrNotFound{name}
	}
	next, err := mutate(s.deepCopy(obj))
	if err != nil {
		var zero T
		return zero, 0, err
	}
	if s.name(next) != name {
		var zero T
		return zero, 0, fmt.Errorf("store: update may not rename %q to %q", name, s.name(next))
	}
	v := s.version.Add(1)
	sh.items[name] = s.deepCopy(next)
	sh.versions[name] = v
	s.emitLocked(idx, WatchEvent[T]{Type: Modified, Object: s.deepCopy(next), Version: v, Shard: idx})
	return next, v, nil
}

// UpdateFunc applies mutate to the named object only if check accepts the
// current object and its resource version — the compare-and-swap primitive
// behind optimistic-concurrency transactions (DeleteFunc's pattern, for
// updates). check runs under the shard lock against the internal object
// (no copy); returning an error aborts the update and surfaces that error
// unchanged, so callers can type their own conflict. Like Update's
// callback, neither function may mutate or retain the pre-copy object nor
// call back into this store. "Bind iff the job's version is unchanged" is
// atomic with respect to every concurrent writer: N scheduler replicas
// racing the same pending job resolve to exactly one winner.
func (s *Store[T]) UpdateFunc(name string, check func(obj T, version int64) error, mutate func(T) (T, error)) (T, int64, error) {
	idx := s.shardIndex(name)
	sh := &s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj, ok := sh.items[name]
	if !ok {
		var zero T
		return zero, 0, ErrNotFound{name}
	}
	if err := check(obj, sh.versions[name]); err != nil {
		var zero T
		return zero, 0, err
	}
	next, err := mutate(s.deepCopy(obj))
	if err != nil {
		var zero T
		return zero, 0, err
	}
	if s.name(next) != name {
		var zero T
		return zero, 0, fmt.Errorf("store: update may not rename %q to %q", name, s.name(next))
	}
	v := s.version.Add(1)
	sh.items[name] = s.deepCopy(next)
	sh.versions[name] = v
	s.emitLocked(idx, WatchEvent[T]{Type: Modified, Object: s.deepCopy(next), Version: v, Shard: idx})
	return next, v, nil
}

// Delete removes the named object.
func (s *Store[T]) Delete(name string) error {
	return s.DeleteFunc(name, func(T, int64) error { return nil })
}

// DeleteFunc removes the named object only if check accepts it. The
// callback runs under the shard lock against the internal object (no
// copy) and its current resource version; returning an error aborts the
// delete and surfaces that error. Like Update's callback, check must not
// mutate or retain the object and must not call back into this store.
// This is the archive sweep's primitive: "delete iff still the terminal
// object I decided to archive" is atomic with respect to concurrent
// cancels, retries and requeues.
func (s *Store[T]) DeleteFunc(name string, check func(obj T, version int64) error) error {
	idx := s.shardIndex(name)
	sh := &s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj, ok := sh.items[name]
	if !ok {
		return ErrNotFound{name}
	}
	if err := check(obj, sh.versions[name]); err != nil {
		return err
	}
	delete(sh.items, name)
	delete(sh.versions, name)
	v := s.version.Add(1)
	s.emitLocked(idx, WatchEvent[T]{Type: Deleted, Object: s.deepCopy(obj), Version: v, Shard: idx})
	return nil
}

// Watch returns a buffered channel of future change events plus a cancel
// function. The channel merges every shard's stream. Watchers that fall
// more than the buffer behind lose events — consumers are expected to
// re-List on their own cadence (level-triggered reconciliation), exactly
// as Kubernetes clients do.
func (s *Store[T]) Watch(buffer int) (<-chan WatchEvent[T], func()) {
	ch, cancel := s.register(buffer, false)
	return ch, cancel
}

// register adds a watcher and returns its channel plus a cancel function.
func (s *Store[T]) register(buffer int, closeOnDrop bool) (chan WatchEvent[T], func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan WatchEvent[T], buffer)
	s.watchMu.Lock()
	id := s.nextWID
	s.nextWID++
	s.watchers[id] = &watcher[T]{ch: ch, closeOnDrop: closeOnDrop}
	s.watchMu.Unlock()
	cancel := func() {
		s.watchMu.Lock()
		if w, ok := s.watchers[id]; ok {
			delete(s.watchers, id)
			close(w.ch)
		}
		s.watchMu.Unlock()
	}
	return ch, cancel
}

// WatchFrom returns a stream that first replays, from the per-shard
// journals, every event beyond the given per-shard marks (as produced by
// Marks and advanced per received event via WatchEvent.Shard), then
// continues live — the resume primitive behind /v1/watch tokens. Marks
// are per shard because cross-shard delivery order is not version order:
// a single scalar position could skip a slow shard's older event. If any
// shard has already evicted events past its mark — or the mark vector's
// length does not match the store's shard count — the exact replay is
// impossible and WatchFrom returns ErrCompacted; the caller must fall
// back to a full re-List. Unlike Watch, a WatchFrom stream never drops
// events silently: a consumer that falls more than the buffer behind has
// its channel closed instead, and resumes from its last marks.
//
// Events for different keys may interleave out of version order on the
// live tail (the Watch contract); the replayed prefix is sorted by
// version, and per-key order is preserved throughout.
func (s *Store[T]) WatchFrom(marks []int64, buffer int) (<-chan WatchEvent[T], func(), error) {
	if buffer <= 0 {
		buffer = 256
	}
	if len(marks) != len(s.shards) {
		return nil, nil, ErrCompacted
	}
	// Register the live watcher first, then snapshot the journals: an
	// event landing between the two shows up in both and is deduped below
	// by its globally unique version; an event after the snapshot shows up
	// only live. Nothing can fall through the gap.
	live, cancelLive := s.register(buffer, true)
	var replay []WatchEvent[T]
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		if sh.evictedThrough > marks[i] {
			sh.mu.RUnlock()
			cancelLive()
			// Drain anything the registered watcher already buffered so the
			// events' object copies become collectable immediately.
			for range live {
			}
			return nil, nil, ErrCompacted
		}
		for _, ev := range sh.journal {
			if ev.Version > marks[i] {
				replay = append(replay, ev)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].Version < replay[j].Version })
	replayed := make(map[int64]struct{}, len(replay))
	for _, ev := range replay {
		replayed[ev.Version] = struct{}{}
	}
	out := make(chan WatchEvent[T], buffer)
	done := make(chan struct{})
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(done)
			cancelLive()
		})
	}
	go func() {
		defer close(out)
		for _, ev := range replay {
			select {
			case out <- ev:
			case <-done:
				return
			}
		}
		for {
			select {
			case <-done:
				return
			case ev, ok := <-live:
				if !ok {
					// Overflow close: end the stream so the consumer resumes
					// from its last token instead of silently missing events.
					return
				}
				if _, dup := replayed[ev.Version]; dup {
					continue
				}
				select {
				case out <- ev:
				case <-done:
					return
				}
			}
		}
	}()
	return out, cancel, nil
}

// emitLocked journals the event, runs hooks and broadcasts to watchers
// while the mutated shard's lock is held. Plain watchers that fall behind
// lose the event (they re-List); resumable watchers are closed instead so
// their consumer reconnects from its token. Holding the shard lock across
// delivery keeps same-key events ordered.
func (s *Store[T]) emitLocked(idx int, ev WatchEvent[T]) {
	sh := &s.shards[idx]
	s.journalAndHookLocked(sh, ev)
	var overflowed []int
	s.watchMu.RLock()
	for id, w := range s.watchers {
		select {
		case w.ch <- ev:
		default: // watcher too slow
			if w.closeOnDrop {
				overflowed = append(overflowed, id)
			}
		}
	}
	s.watchMu.RUnlock()
	for _, id := range overflowed {
		s.watchMu.Lock()
		if w, ok := s.watchers[id]; ok {
			delete(s.watchers, id)
			close(w.ch)
		}
		s.watchMu.Unlock()
	}
}

// Version returns the store's latest resource version.
func (s *Store[T]) Version() int64 {
	return s.version.Load()
}
