// Boot-time durability primitives: loading a snapshot (Restore), raising
// the journal floor to the snapshot's marks (SetShardFloor), re-applying
// logged mutations (Replay) and dumping shard contents for the next
// snapshot (DumpShard). They exist for the WAL layer and share the live
// mutation paths' bookkeeping — hook-fed indexes rebuilt through Replay
// can never diverge from ones built by the original mutations, because
// both run the same hooks under the same shard lock.
package store

import "fmt"

// advanceVersion raises the global version counter to at least v —
// replayed versions were minted by a previous process, so the counter
// must move past them before new mutations allocate.
func (s *Store[T]) advanceVersion(v int64) {
	for {
		cur := s.version.Load()
		if cur >= v || s.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// journalAndHookLocked advances the shard's high-water mark, appends the
// event to the bounded journal ring and runs the hooks — the shared core
// of a live emit and a boot-time replay.
func (s *Store[T]) journalAndHookLocked(sh *shard[T], ev WatchEvent[T]) {
	sh.lastVersion = ev.Version
	if len(sh.journal) >= s.journalCap {
		sh.evictedThrough = sh.journal[0].Version
		sh.journal[0] = WatchEvent[T]{} // release the evicted object copy
		sh.journal = append(sh.journal[1:], ev)
	} else {
		sh.journal = append(sh.journal, ev)
	}
	for _, hook := range s.hooks {
		hook(ev)
	}
}

// Restore installs one object at a known resource version — the snapshot
// half of replay-on-boot. Hooks fire with a synthetic Added event so the
// hook-fed indexes rebuild; the journal is NOT written (the mutations
// behind a snapshot are compacted away), so the shard's eviction floor
// rises to the object's version: a resume token from before it correctly
// answers ErrCompacted instead of silently skipping history.
func (s *Store[T]) Restore(obj T, version int64) error {
	key := s.name(obj)
	if key == "" {
		return fmt.Errorf("store: restored object has empty name")
	}
	idx := s.shardIndex(key)
	sh := &s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.items[key] = s.deepCopy(obj)
	sh.versions[key] = version
	s.advanceVersion(version)
	if version > sh.lastVersion {
		sh.lastVersion = version
	}
	if version > sh.evictedThrough {
		sh.evictedThrough = version
	}
	ev := WatchEvent[T]{Type: Added, Object: s.deepCopy(obj), Version: version, Shard: idx}
	for _, hook := range s.hooks {
		hook(ev)
	}
	return nil
}

// SetShardFloor raises each shard's version bookkeeping to at least the
// given marks — the snapshot's per-shard high-water marks, applied before
// WAL replay so that (a) resume tokens positioned below the snapshot get
// the typed ErrCompacted answer, and (b) the global counter never re-mints
// a version the previous process already used (deleted keys leave no
// per-key trace, only the marks remember them).
func (s *Store[T]) SetShardFloor(marks []int64) error {
	if len(marks) != len(s.shards) {
		return fmt.Errorf("store: floor marks for %d shards, store has %d", len(marks), len(s.shards))
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if marks[i] > sh.lastVersion {
			sh.lastVersion = marks[i]
		}
		if marks[i] > sh.evictedThrough {
			sh.evictedThrough = marks[i]
		}
		sh.mu.Unlock()
		s.advanceVersion(marks[i])
	}
	return nil
}

// Replay re-applies one logged mutation exactly as the original emit did
// — object map, per-key version, journal ring and hooks — minus the
// watcher broadcast (nobody watches during boot). The shard coordinate is
// recomputed from the key, not trusted from the log. Events must arrive
// in per-key version order, which per-shard WAL files guarantee.
func (s *Store[T]) Replay(ev WatchEvent[T]) error {
	key := s.name(ev.Object)
	if key == "" {
		return fmt.Errorf("store: replayed event has empty object name")
	}
	idx := s.shardIndex(key)
	sh := &s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch ev.Type {
	case Deleted:
		delete(sh.items, key)
		delete(sh.versions, key)
	default:
		sh.items[key] = s.deepCopy(ev.Object)
		sh.versions[key] = ev.Version
	}
	s.advanceVersion(ev.Version)
	ev.Shard = idx
	s.journalAndHookLocked(sh, ev)
	return nil
}

// DumpShard passes every (object, version) of shard i to fn under the
// shard's read lock and returns the shard's emission high-water mark —
// the mark that tells replay which logged versions this dump covers. Like
// Range, fn sees the internal object: it must not mutate or retain it and
// must not call back into the store. The dump is exact per shard (taken
// under the lock); cross-shard consistency comes from the WAL replay rule,
// not from stopping the world.
func (s *Store[T]) DumpShard(i int, fn func(obj T, version int64)) int64 {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for key, obj := range sh.items {
		fn(obj, sh.versions[key])
	}
	return sh.lastVersion
}
