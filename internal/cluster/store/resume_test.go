package store

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

type robj struct {
	Name string
	Val  int
}

func newObjStore() *Store[robj] {
	return New(func(o robj) robj { return o }, func(o robj) string { return o.Name })
}

// collect drains up to n events from ch, waiting up to the deadline.
func collect(t *testing.T, ch <-chan WatchEvent[robj], n int) []WatchEvent[robj] {
	t.Helper()
	var out []WatchEvent[robj]
	deadline := time.After(2 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d of %d events", len(out), n)
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out after %d of %d events", len(out), n)
		}
	}
	return out
}

// TestWatchFromReplaysJournal checks the core resume contract: a watch
// opened at an old version replays exactly the missed events, in version
// order, then continues live.
func TestWatchFromReplaysJournal(t *testing.T) {
	s := newObjStore()
	if _, err := s.Create(robj{Name: "a", Val: 1}); err != nil {
		t.Fatal(err)
	}
	mark := s.Marks()
	// Three events after the mark: these must replay.
	s.Create(robj{Name: "b", Val: 1})
	s.Update("a", func(o robj) (robj, error) { o.Val = 2; return o, nil })
	s.Delete("b")

	ch, cancel, err := s.WatchFrom(mark, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	got := collect(t, ch, 3)
	wantTypes := []EventType{Added, Modified, Deleted}
	for i, ev := range got {
		if ev.Type != wantTypes[i] {
			t.Fatalf("event %d type %s, want %s", i, ev.Type, wantTypes[i])
		}
		if ev.Version <= mark[ev.Shard] {
			t.Fatalf("event %d version %d not after shard %d mark %d", i, ev.Version, ev.Shard, mark[ev.Shard])
		}
		if i > 0 && got[i-1].Version >= ev.Version {
			t.Fatalf("replay out of version order: %d then %d", got[i-1].Version, ev.Version)
		}
	}
	// Live tail still flows after the replayed prefix.
	s.Create(robj{Name: "c", Val: 9})
	live := collect(t, ch, 1)
	if live[0].Type != Added || live[0].Object.Name != "c" {
		t.Fatalf("live event = %+v, want ADDED c", live[0])
	}
}

// TestWatchFromNoDuplicates floods mutations while a resume is opening and
// asserts every version arrives exactly once — the journal/live overlap
// window must dedupe.
func TestWatchFromNoDuplicates(t *testing.T) {
	s := newObjStore()
	s.Create(robj{Name: "k"})
	mark := s.Marks()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.Update("k", func(o robj) (robj, error) { o.Val++; return o, nil })
		}
	}()
	ch, cancel, err := s.WatchFrom(mark, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	<-done
	got := collect(t, ch, 200)
	seen := make(map[int64]bool, len(got))
	for _, ev := range got {
		if seen[ev.Version] {
			t.Fatalf("version %d delivered twice", ev.Version)
		}
		seen[ev.Version] = true
	}
}

// TestWatchFromCompacted shrinks the journal, overflows one shard, and
// checks that resuming below the eviction horizon fails with ErrCompacted
// while resuming at the head still works.
func TestWatchFromCompacted(t *testing.T) {
	s := newObjStore()
	s.SetJournalCap(8)
	s.Create(robj{Name: "k"})
	mark := s.Marks()
	for i := 0; i < 50; i++ {
		s.Update("k", func(o robj) (robj, error) { o.Val++; return o, nil })
	}
	if _, _, err := s.WatchFrom(mark, 16); !errors.Is(err, ErrCompacted) {
		t.Fatalf("resume below horizon: err = %v, want ErrCompacted", err)
	}
	// A mark vector of the wrong length cannot be resumed either.
	if _, _, err := s.WatchFrom([]int64{0}, 16); !errors.Is(err, ErrCompacted) {
		t.Fatalf("resume with wrong-length marks: err = %v, want ErrCompacted", err)
	}
	// Resuming from the current head is always possible.
	ch, cancel, err := s.WatchFrom(s.Marks(), 16)
	if err != nil {
		t.Fatalf("resume at head: %v", err)
	}
	defer cancel()
	s.Update("k", func(o robj) (robj, error) { o.Val = -1; return o, nil })
	got := collect(t, ch, 1)
	if got[0].Object.Val != -1 {
		t.Fatalf("live event after head resume = %+v", got[0])
	}
}

// TestWatchFromOverflowCloses pins the resumable watcher's no-silent-loss
// contract: a consumer that falls more than the buffer behind has its
// stream closed (so it resumes from its token) instead of losing events.
func TestWatchFromOverflowCloses(t *testing.T) {
	s := newObjStore()
	s.Create(robj{Name: "k"})
	ch, cancel, err := s.WatchFrom(s.Marks(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Nobody drains ch; the forwarding goroutine eventually blocks on it
	// with its live buffer full, and the next emit closes the live channel.
	for i := 0; i < 64; i++ {
		s.Update("k", func(o robj) (robj, error) { o.Val++; return o, nil })
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // closed, as promised
			}
		case <-deadline:
			t.Fatal("overflowed resumable watch never closed")
		}
	}
}

// TestDeleteFunc covers the conditional delete: the check sees the live
// object and version, a rejection aborts, and acceptance emits DELETED.
func TestDeleteFunc(t *testing.T) {
	s := newObjStore()
	_, err := s.Create(robj{Name: "a", Val: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, v, _ := s.Get("a")
	wantErr := fmt.Errorf("nope")
	if err := s.DeleteFunc("a", func(o robj, version int64) error {
		if o.Val != 7 || version != v {
			t.Fatalf("check saw (%+v, %d), want (Val 7, %d)", o, version, v)
		}
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("rejected delete err = %v", err)
	}
	if _, _, err := s.Get("a"); err != nil {
		t.Fatalf("object vanished after rejected delete: %v", err)
	}
	ch, cancelW := s.Watch(4)
	defer cancelW()
	if err := s.DeleteFunc("a", func(robj, int64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("a"); err == nil {
		t.Fatal("object survived accepted delete")
	}
	select {
	case ev := <-ch:
		if ev.Type != Deleted || ev.Object.Name != "a" {
			t.Fatalf("event = %+v, want DELETED a", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no DELETED event")
	}
	var nf ErrNotFound
	if err := s.DeleteFunc("a", func(robj, int64) error { return nil }); !errors.As(err, &nf) {
		t.Fatalf("missing-object DeleteFunc err = %v, want ErrNotFound", err)
	}
}
