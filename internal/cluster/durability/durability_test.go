package durability

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/archive"
	"qrio/internal/cluster/state"
	"qrio/internal/cluster/store"
	"qrio/internal/cluster/wal"
	"qrio/internal/device"
	"qrio/internal/graph"
)

func testBackend(t *testing.T, name string) *device.Backend {
	t.Helper()
	b, err := device.UniformBackend(name, graph.Line(5), 0.1, 0.01, 0.05, 500e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func job(name, tenant string) api.QuantumJob {
	return api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: api.JobSpec{
			QASM:     "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];",
			Strategy: api.StrategyFidelity, TargetFidelity: 0.9,
			Tenant: tenant,
		},
	}
}

func mustOpen(t *testing.T, c *state.Cluster, dir string) *Manager {
	t.Helper()
	m, err := Open(c, Options{Dir: dir, SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func setRunning(t *testing.T, c *state.Cluster, name string, cancelRequested bool) {
	t.Helper()
	now := time.Now()
	_, _, err := c.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = api.JobRunning
		j.Status.StartedAt = &now
		j.Status.CancelRequested = cancelRequested
		return j, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func jobNames(jobs []api.QuantumJob) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.Name
	}
	sort.Strings(out)
	return out
}

// TestRestartRoundtrip is the core crash-restart story: every store,
// every hook-fed index, tenant overrides and the UID sequence survive a
// close-and-reopen, and jobs that were Running come back Pending.
func TestRestartRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c := state.New()
	m := mustOpen(t, c, dir)

	if _, err := c.AddNode(testBackend(t, "dev-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode(testBackend(t, "dev-b")); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"p1", "p2", "s1", "r1"} {
		if err := c.SubmitJob(job(n, "alice")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.BindJob("s1", "dev-a", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.BindJob("r1", "dev-b", 0.5); err != nil {
		t.Fatal(err)
	}
	setRunning(t, c, "r1", false)
	if _, err := c.SetTenantConfig(api.TenantConfig{
		ObjectMeta: api.ObjectMeta{Name: "alice"},
		Weight:     7,
		Quota:      api.TenantQuota{MaxActive: 3},
	}); err != nil {
		t.Fatal(err)
	}
	c.RecordEvent("Informational", "p1", "Test", "pre-crash event")
	preEvents := c.Events.Len()
	preUID := uidSuffix(c.NextUID("probe"))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := state.New()
	m2 := mustOpen(t, c2, dir)
	defer m2.Close()
	st := m2.Stats()
	if st.Replay.ReplayedRecords == 0 {
		t.Fatalf("no records replayed: %+v", st.Replay)
	}
	if st.Replay.RequeuedJobs != 1 {
		t.Fatalf("requeued = %d, want 1 (r1)", st.Replay.RequeuedJobs)
	}

	// Objects back, with the orphaned Running job re-queued.
	if got := jobNames(c2.Jobs.List()); !equalStrings(got, []string{"p1", "p2", "r1", "s1"}) {
		t.Fatalf("jobs after restart: %v", got)
	}
	r1, _, err := c2.Jobs.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Status.Phase != api.JobPending || r1.Status.Node != "" || r1.Status.StartedAt != nil {
		t.Fatalf("orphan not requeued: %+v", r1.Status)
	}
	s1, _, _ := c2.Jobs.Get("s1")
	if s1.Status.Phase != api.JobScheduled || s1.Status.Node != "dev-a" {
		t.Fatalf("scheduled job mangled: %+v", s1.Status)
	}

	// Hook-fed indexes must match a from-scratch rebuild of the same data.
	wantPending := jobNames(c2.Jobs.ListFunc(func(j api.QuantumJob) bool { return j.Status.Phase == api.JobPending }))
	if got := jobNames(c2.PendingJobs()); !equalStrings(got, wantPending) {
		t.Fatalf("pending index %v, rebuild says %v", got, wantPending)
	}
	wantSched := jobNames(c2.Jobs.ListFunc(func(j api.QuantumJob) bool {
		return j.Status.Phase == api.JobScheduled && j.Status.Node == "dev-a"
	}))
	if got := jobNames(c2.ScheduledJobs("dev-a")); !equalStrings(got, wantSched) {
		t.Fatalf("scheduled index %v, rebuild says %v", got, wantSched)
	}
	usage := c2.TenantUsage("alice")
	if usage.Pending != len(wantPending) || usage.Active != 1 {
		t.Fatalf("usage index after restart: %+v", usage)
	}

	// Tenant override (weight and quota) survived and is live.
	if w, ok := c2.TenantWeight("alice"); !ok || w != 7 {
		t.Fatalf("tenant weight = %d %v", w, ok)
	}
	if q := c2.QuotaFor("alice"); q.MaxActive != 3 {
		t.Fatalf("quota = %+v", q)
	}

	// Events and the UID sequence carried over: no identifier is re-minted.
	if c2.Events.Len() < preEvents {
		t.Fatalf("events lost: %d < %d", c2.Events.Len(), preEvents)
	}
	if got := uidSuffix(c2.NextUID("probe")); got <= preUID {
		t.Fatalf("UID floor regressed: %d <= %d", got, preUID)
	}

	// The node is back and usable.
	if _, err := c2.Backend("dev-a"); err != nil {
		t.Fatal(err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotCompaction: records before the snapshot come back from the
// snapshot (skipped in the logs), records after it from the logs, and the
// pre-snapshot generation's files are gone.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	c := state.New()
	m := mustOpen(t, c, dir)
	for i := 0; i < 5; i++ {
		if err := c.SubmitJob(job("pre-"+strconv.Itoa(i), "a")); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("gen = %d", gen)
	}
	for i := 0; i < 5; i++ {
		if err := c.SubmitJob(job("post-"+strconv.Itoa(i), "a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	g0, _ := filepath.Glob(filepath.Join(dir, "wal", "*-g0.wal"))
	if len(g0) != 0 {
		t.Fatalf("generation 0 files survived the snapshot: %v", g0)
	}

	c2 := state.New()
	m2 := mustOpen(t, c2, dir)
	defer m2.Close()
	st := m2.Stats()
	if !st.Replay.SnapshotLoaded || st.Replay.SnapshotGen != 1 {
		t.Fatalf("snapshot not loaded: %+v", st.Replay)
	}
	if st.Replay.RestoredObjects == 0 || st.Replay.ReplayedRecords == 0 {
		t.Fatalf("expected both restore and replay: %+v", st.Replay)
	}
	if c2.Jobs.Len() != 10 {
		t.Fatalf("jobs = %d, want 10", c2.Jobs.Len())
	}
	// Version continuity: the next mutation must not reuse a replayed
	// version (watch positions would silently alias).
	before := c2.Jobs.Version()
	if err := c2.SubmitJob(job("fresh", "a")); err != nil {
		t.Fatal(err)
	}
	if c2.Jobs.Version() <= before {
		t.Fatal("version did not advance past replayed history")
	}
}

// TestResumeTokens: a token minted at shutdown resumes cleanly after a
// log-only restart; after a snapshot-restored restart, positions below
// the snapshot are compacted away and must fail with the typed 410.
func TestResumeTokens(t *testing.T) {
	dir := t.TempDir()
	c := state.New()
	m := mustOpen(t, c, dir)
	_, early, cancel := c.SubscribeWithToken(8)
	cancel()
	for i := 0; i < 8; i++ {
		if err := c.SubmitJob(job("j"+strconv.Itoa(i), "a")); err != nil {
			t.Fatal(err)
		}
	}
	_, atClose, cancel2 := c.SubscribeWithToken(8)
	cancel2()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Log-only restart: the journal is rebuilt by replay, so both the
	// zero-position token and the at-close token still resolve.
	c2 := state.New()
	m2 := mustOpen(t, c2, dir)
	for _, tok := range []state.ResumeToken{early, atClose} {
		ch, stop, err := c2.SubscribeFrom(8, tok)
		if err != nil {
			t.Fatalf("token %s after log replay: %v", tok, err)
		}
		stop()
		drain(ch)
	}
	if _, err := m2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// Snapshot-restored restart: history below the snapshot is gone.
	c3 := state.New()
	m3 := mustOpen(t, c3, dir)
	defer m3.Close()
	if _, _, err := c3.SubscribeFrom(8, early); !errors.Is(err, store.ErrCompacted) {
		t.Fatalf("early token after snapshot: err=%v, want ErrCompacted", err)
	}
	ch, stop, err := c3.SubscribeFrom(8, atClose)
	if err != nil {
		t.Fatalf("at-close token after snapshot: %v", err)
	}
	stop()
	drain(ch)
}

func drain(ch <-chan state.Notification) {
	for range ch {
	}
}

// populate writes 16 jobs and closes, returning the largest jobs WAL file
// for the corruption cases to damage.
func populate(t *testing.T, dir string) string {
	t.Helper()
	c := state.New()
	m := mustOpen(t, c, dir)
	for i := 0; i < 16; i++ {
		if err := c.SubmitJob(job("job-"+strconv.Itoa(i), "a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "wal", "jobs-s*-g0.wal"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no jobs wal files: %v", err)
	}
	var biggest string
	var size int64
	for _, f := range files {
		if info, err := os.Stat(f); err == nil && info.Size() > size {
			biggest, size = f, info.Size()
		}
	}
	return biggest
}

// TestCorruptionRecovery drives the three crash-damage shapes the design
// promises to absorb: a torn tail, a CRC-corrupt record, and a
// half-written snapshot temp file. Each reopens successfully with at most
// the damaged suffix of one shard lost.
func TestCorruptionRecovery(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir, walFile string)
		lost    int // jobs lost out of 16
	}{
		{
			name: "torn tail",
			corrupt: func(t *testing.T, dir, walFile string) {
				f, err := os.OpenFile(walFile, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				f.Write([]byte{0xDE, 0xAD, 0xBE})
				f.Close()
			},
			lost: 0,
		},
		{
			name: "crc mismatch in final record",
			corrupt: func(t *testing.T, dir, walFile string) {
				res, err := wal.ScanFile(walFile)
				if err != nil || len(res.Records) == 0 {
					t.Fatalf("scan: %v (%d records)", err, len(res.Records))
				}
				raw, _ := os.ReadFile(walFile)
				raw[res.Offsets[len(res.Offsets)-1]+8] ^= 0xFF
				if err := os.WriteFile(walFile, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			lost: 1,
		},
		{
			name: "half-written snapshot temp file",
			corrupt: func(t *testing.T, dir, walFile string) {
				junk := filepath.Join(dir, "snapshot.json.tmp-12345")
				if err := os.WriteFile(junk, []byte("partial garbage"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			lost: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			walFile := populate(t, dir)
			tc.corrupt(t, dir, walFile)
			c := state.New()
			m := mustOpen(t, c, dir)
			defer m.Close()
			if got := c.Jobs.Len(); got != 16-tc.lost {
				t.Fatalf("jobs after recovery = %d, want %d", got, 16-tc.lost)
			}
			if tc.lost > 0 && m.Stats().Replay.TruncatedTails == 0 {
				t.Fatal("corrupt record recovered without a truncation")
			}
			if leftover, _ := filepath.Glob(filepath.Join(dir, "snapshot.json.tmp*")); len(leftover) != 0 {
				t.Fatalf("temp snapshot files survived boot: %v", leftover)
			}
			// The truncated log accepts appends again.
			if err := c.SubmitJob(job("after-recovery", "a")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCorruptSnapshotIsFatal: damage to the snapshot body itself must
// refuse to boot — the generations behind it are deleted, so "skip it"
// would be silent data loss.
func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	c := state.New()
	m := mustOpen(t, c, dir)
	if err := c.SubmitJob(job("j", "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	m.Close()
	path := filepath.Join(dir, "snapshot.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(state.New(), Options{Dir: dir, SnapshotInterval: -1}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("corrupt snapshot booted: err=%v", err)
	}
}

// TestArchiveReloadAndTombstones: archived jobs come back across a
// restart, removed ones stay removed, and a job present in both tiers
// (crash between archive-put and hot-delete) resolves hot-wins.
func TestArchiveReloadAndTombstones(t *testing.T) {
	dir := t.TempDir()
	c := state.New()
	m := mustOpen(t, c, dir)
	now := time.Now()
	done := job("done", "a")
	done.Status.Phase = api.JobSucceeded
	gone := job("gone", "a")
	gone.Status.Phase = api.JobFailed
	// "both" lives in the hot store AND the archive — the shape a crash
	// between the sweep's archive-put and hot-delete leaves behind. Submit
	// first: live submission refuses names the archive already holds.
	if err := c.SubmitJob(job("both", "a")); err != nil {
		t.Fatal(err)
	}
	both, _, err := c.Jobs.Get("both")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []archive.Entry{
		{Job: done, ArchivedAt: now},
		{Job: gone, ArchivedAt: now},
		{Job: both, ArchivedAt: now},
	} {
		if err := c.Archived.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	c.Archived.Remove("gone")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := state.New()
	m2 := mustOpen(t, c2, dir)
	defer m2.Close()
	st := m2.Stats()
	if st.Replay.ArchivedEntries == 0 {
		t.Fatalf("archive not reloaded: %+v", st.Replay)
	}
	if !c2.Archived.Has("done") {
		t.Fatal("archived job lost")
	}
	if c2.Archived.Has("gone") {
		t.Fatal("tombstoned job resurrected")
	}
	if c2.Archived.Has("both") {
		t.Fatal("double-tier job not reconciled hot-wins")
	}
	if st.Replay.TombstonedJobs != 1 {
		t.Fatalf("tombstoned = %d, want 1", st.Replay.TombstonedJobs)
	}
	if _, _, err := c2.Jobs.Get("both"); err != nil {
		t.Fatalf("hot copy lost in reconcile: %v", err)
	}
}

// TestCancelRequestedOrphanResolves: a Running job whose cancellation was
// in flight when the process died completes the cancel on boot instead of
// being re-queued.
func TestCancelRequestedOrphanResolves(t *testing.T) {
	dir := t.TempDir()
	c := state.New()
	m := mustOpen(t, c, dir)
	if _, err := c.AddNode(testBackend(t, "dev-a")); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitJob(job("doomed", "a")); err != nil {
		t.Fatal(err)
	}
	if err := c.BindJob("doomed", "dev-a", 0.5); err != nil {
		t.Fatal(err)
	}
	setRunning(t, c, "doomed", true)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := state.New()
	m2 := mustOpen(t, c2, dir)
	defer m2.Close()
	j, _, err := c2.Jobs.Get("doomed")
	if err != nil {
		t.Fatal(err)
	}
	if j.Status.Phase != api.JobCancelled {
		t.Fatalf("phase = %s, want Cancelled", j.Status.Phase)
	}
	if j.Status.FinishedAt == nil || !strings.Contains(j.Status.Message, "restart") {
		t.Fatalf("cancel completion not recorded: %+v", j.Status)
	}
}

// TestWriterErrorSurfacesInStats: a failed WAL append latches into the
// admin stats rather than vanishing.
func TestWriterErrorSurfacesInStats(t *testing.T) {
	dir := t.TempDir()
	c := state.New()
	m := mustOpen(t, c, dir)
	defer m.Close()
	m.noteWALErr(errors.New("disk on fire"))
	st := m.Stats()
	if !strings.Contains(st.WALError, "disk on fire") {
		t.Fatalf("WALError = %q", st.WALError)
	}
}
