// Package durability makes QRIO's cluster state survive a crash. Every
// store mutation is appended — through the same hook mechanism that feeds
// the in-memory indexes — to a per-(store,shard) write-ahead log, and a
// periodic snapshot compacts the logs into one atomically-replaced file.
// On boot the manager restores the snapshot, replays the logs past it,
// reloads the archive spill file, and re-queues jobs whose containers died
// with the old process. Because replay re-fires the store hooks, every
// derived index (pending queues, tenant usage, terminal set, event ring,
// scheduled-by-node) is rebuilt by the exact code that built it live — the
// recovered process is behaviourally indistinguishable from one that never
// crashed, except that Running jobs are back in the queue.
//
// Layout under the data directory:
//
//	snapshot.json                 one CRC-framed, atomically-replaced snapshot
//	archive.jsonl                 terminal-job archive spill (JSONL, appended)
//	wal/<store>-s<shard>-g<gen>.wal  append logs, rotated per snapshot generation
//
// The snapshot protocol is rotate-then-dump: all writers rotate to
// generation g+1 first, then each shard is dumped under its lock. Any
// record left in a generation-g file therefore has a version at or below
// that shard's dump mark, so boot replays every log at generation ≥ the
// snapshot's and skips records the snapshot already covers. A crash at any
// point between rotate, snapshot write and old-generation removal recovers
// to the same state.
package durability

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/cluster/wal"
	"qrio/internal/faults"
	"qrio/internal/obs"
)

// DefaultSnapshotInterval is how often the background loop compacts the
// logs when the operator does not choose an interval.
const DefaultSnapshotInterval = 5 * time.Minute

// Options configure durable state. The zero value disables durability
// entirely — the cluster runs in-memory exactly as before.
type Options struct {
	// Dir is the data directory. Empty disables durability.
	Dir string
	// Fsync syncs every WAL append. Turning it off trades the tail of the
	// log on power loss for append latency; a process crash (as opposed to
	// kernel or power failure) loses nothing either way.
	Fsync bool
	// SnapshotInterval is the background compaction period. Zero means
	// DefaultSnapshotInterval; negative disables the background loop
	// (snapshots then happen only through the admin endpoint).
	SnapshotInterval time.Duration
	// Faults is the fault-injection registry threaded into the WAL append
	// path (wal.append) and the archive spill writer (archive.spill). Nil
	// resolves to faults.Default, so the daemon's -faults flag reaches
	// production writers; tests inject private registries.
	Faults *faults.Registry
}

// Enabled reports whether the options ask for durable state.
func (o Options) Enabled() bool { return o.Dir != "" }

// ReplayStats describes what one boot recovered.
type ReplayStats struct {
	SnapshotLoaded  bool  `json:"snapshotLoaded"`
	SnapshotGen     int64 `json:"snapshotGen,omitempty"`
	RestoredObjects int   `json:"restoredObjects"`
	ReplayedRecords int   `json:"replayedRecords"`
	SkippedRecords  int   `json:"skippedRecords"`
	TruncatedTails  int   `json:"truncatedTails"`
	ArchivedEntries int   `json:"archivedEntries"`
	TombstonedJobs  int   `json:"tombstonedJobs"`
	RequeuedJobs    int   `json:"requeuedJobs"`
	DurationMillis  int64 `json:"durationMillis"`
}

// Stats is the admin-surface view of the durability subsystem.
type Stats struct {
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir,omitempty"`
	Fsync   bool   `json:"fsync,omitempty"`
	// Generation is the current WAL generation (bumped by each snapshot).
	Generation int64 `json:"generation"`
	// WALRecords / WALBytes count appends across all live writers — i.e.
	// the log volume since the last snapshot: the replay debt a crash right
	// now would pay. This is the "WAL lag" an operator watches.
	WALRecords int64 `json:"walRecords"`
	WALBytes   int64 `json:"walBytes"`
	// LastSnapshotAt / LastSnapshotAge report the most recent successful
	// snapshot (boot counts when a snapshot file was restored).
	LastSnapshotAt  time.Time   `json:"lastSnapshotAt,omitempty"`
	LastSnapshotAge string      `json:"lastSnapshotAge,omitempty"`
	Snapshots       int64       `json:"snapshots"`
	Replay          ReplayStats `json:"replay"`
	// WALError / SpillError are latched first-failure strings; empty means
	// healthy. A latched WAL error means mutations since it are not durable.
	WALError   string `json:"walError,omitempty"`
	SpillError string `json:"spillError,omitempty"`
	// WALErrorClears counts latched WAL errors healed by a successful
	// snapshot (the only path that clears the latch), and
	// LastWALErrorClearedAt stamps the most recent clear — so an operator
	// who missed the error window can still see that durability degraded
	// and recovered.
	WALErrorClears        int64     `json:"walErrorClears,omitempty"`
	LastWALErrorClearedAt time.Time `json:"lastWALErrorClearedAt,omitempty"`
}

// Manager owns the WAL writers, the snapshot loop and the archive spill
// file for one cluster.
type Manager struct {
	opts    Options
	cluster *state.Cluster
	shims   []storeShim
	writers map[string][]*wal.Writer // store name → per-shard writers

	// snapMu serialises snapshots (admin-triggered and periodic).
	snapMu sync.Mutex
	gen    atomic.Int64

	mu          sync.Mutex
	walErr      error
	lastSnap    time.Time
	snapshots   int64
	errClears   int64
	lastClearAt time.Time
	replay      ReplayStats

	spill *os.File
}

// Metrics is the durability layer's instrumentation handle: the hot-path
// families fed by the WAL writers' append observers. Gauge-like families
// (lag, snapshot age, latched errors) are mirrored from Stats at scrape
// time by the core wiring instead.
type Metrics struct {
	// Appends counts successful WAL appends across all writers.
	Appends *obs.Counter
	// FsyncSeconds observes per-append fsync latency (only when the
	// writers fsync — without it appends never sync and nothing is
	// observed here).
	FsyncSeconds *obs.Histogram
}

// NewMetrics registers the durability hot-path families on a registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Appends: r.Counter("qrio_durability_wal_appends_total",
			"Successful WAL appends across all writers.").With(),
		FsyncSeconds: r.Histogram("qrio_durability_fsync_duration_seconds",
			"Per-append fsync latency (empty when the WAL does not fsync).", nil).With(),
	}
}

// SetMetrics installs append observers on every writer. Call after Open
// and before traffic (core wires it while building the process).
func (m *Manager) SetMetrics(mx *Metrics) {
	if mx == nil {
		return
	}
	for _, ws := range m.writers {
		for _, w := range ws {
			w.SetObserver(func(frameBytes int, fsync time.Duration) {
				mx.Appends.Inc()
				if fsync >= 0 {
					mx.FsyncSeconds.Observe(fsync.Seconds())
				}
			})
		}
	}
}

func (m *Manager) snapshotPath() string { return filepath.Join(m.opts.Dir, "snapshot.json") }
func (m *Manager) archivePath() string  { return filepath.Join(m.opts.Dir, "archive.jsonl") }
func (m *Manager) walDir() string       { return filepath.Join(m.opts.Dir, "wal") }
func (m *Manager) walPath(storeName string, shard int, gen int64) string {
	return filepath.Join(m.walDir(), fmt.Sprintf("%s-s%d-g%d.wal", storeName, shard, gen))
}

// snapshotFile is the on-disk snapshot: one JSON document inside one CRC
// frame, written atomically.
type snapshotFile struct {
	Gen     int64                    `json:"gen"`
	TakenAt time.Time                `json:"takenAt"`
	Stores  map[string]snapshotStore `json:"stores"`
}

type snapshotStore struct {
	Marks   []int64          `json:"marks"`
	Objects []snapshotObject `json:"objects"`
}

type snapshotObject struct {
	V int64           `json:"v"`
	O json.RawMessage `json:"o"`
}

// Open builds the manager and runs the full boot flow against a cluster
// that has not yet served any traffic: core.New calls it before backends
// register and before any loop starts. Returns an error when the data
// directory is unusable or its contents are damaged beyond the safe
// recoveries (a torn log tail recovers silently; a corrupt snapshot body
// does not, because generations behind it may already be gone).
func Open(c *state.Cluster, opts Options) (*Manager, error) {
	if !opts.Enabled() {
		return nil, errors.New("durability: no data directory configured")
	}
	start := time.Now()
	m := &Manager{
		opts:    opts,
		cluster: c,
		writers: make(map[string][]*wal.Writer),
	}
	m.shims = []storeShim{
		&typedShim[api.QuantumJob]{label: "jobs", s: c.Jobs,
			uid: func(j api.QuantumJob) (string, string) { return j.UID, j.Name }},
		&typedShim[api.Node]{label: "nodes", s: c.Nodes,
			uid: func(n api.Node) (string, string) { return n.UID, n.Name }},
		&typedShim[api.Result]{label: "results", s: c.Results,
			uid: func(r api.Result) (string, string) { return r.UID, r.Name }},
		&typedShim[api.Event]{label: "events", s: c.Events,
			uid: func(e api.Event) (string, string) { return e.UID, e.Name }},
		&typedShim[api.TenantConfig]{label: "tenants", s: c.TenantConfigs,
			uid: func(t api.TenantConfig) (string, string) { return t.UID, t.Name }},
	}
	if err := os.MkdirAll(m.walDir(), 0o755); err != nil {
		return nil, fmt.Errorf("durability: %w", err)
	}

	// 1. Snapshot restore. A missing file is a first boot; a leftover
	// atomic-write temp file is a crash mid-snapshot and is discarded (the
	// real file, if any, is intact by construction of rename).
	snap, err := m.readSnapshot()
	if err != nil {
		return nil, err
	}
	marks := make(map[string][]int64)
	if snap != nil {
		m.replay.SnapshotLoaded = true
		m.replay.SnapshotGen = snap.Gen
		m.gen.Store(snap.Gen)
		m.mu.Lock()
		m.lastSnap = snap.TakenAt
		m.mu.Unlock()
		for _, shim := range m.shims {
			ss, ok := snap.Stores[shim.storeName()]
			if !ok {
				continue
			}
			if err := shim.setFloor(ss.Marks); err != nil {
				return nil, fmt.Errorf("durability: %s: %w", shim.storeName(), err)
			}
			marks[shim.storeName()] = ss.Marks
			for _, obj := range ss.Objects {
				if err := shim.restore(obj.O, obj.V); err != nil {
					return nil, err
				}
				m.replay.RestoredObjects++
			}
		}
	}

	// 2. Log replay: every generation at or past the snapshot's, ascending,
	// per shard. Records the snapshot already covers (version ≤ the shard's
	// dump mark) are skipped; torn tails are truncated to the valid prefix.
	logs, maxGen, err := m.listLogs()
	if err != nil {
		return nil, err
	}
	if maxGen > m.gen.Load() {
		m.gen.Store(maxGen)
	}
	for _, shim := range m.shims {
		name := shim.storeName()
		for shard := 0; shard < shim.shardCount(); shard++ {
			floor := int64(0)
			if sm := marks[name]; shard < len(sm) {
				floor = sm[shard]
			}
			gens := logs[logKey{name, shard}]
			sort.Slice(gens, func(a, b int) bool { return gens[a] < gens[b] })
			for _, g := range gens {
				if snap != nil && g < snap.Gen {
					continue // pre-snapshot generation, fully covered
				}
				if err := m.replayFile(shim, m.walPath(name, shard, g), floor); err != nil {
					return nil, err
				}
			}
		}
	}

	// 3. Remove generations behind the snapshot (a crash between snapshot
	// write and cleanup leaves them; they are fully covered and ignored
	// above, so deleting them is pure housekeeping).
	if snap != nil {
		m.removeGensBelow(logs, snap.Gen)
	}

	// 4. Archive: reload the spill file, then attach it as the live spill
	// writer (in that order — loading through a live writer would re-spill
	// every line back into the file).
	if raw, err := os.Open(m.archivePath()); err == nil {
		n, lerr := c.Archived.Load(raw)
		raw.Close()
		if lerr != nil {
			return nil, lerr
		}
		m.replay.ArchivedEntries = n
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("durability: %w", err)
	}
	spill, err := os.OpenFile(m.archivePath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durability: %w", err)
	}
	m.spill = spill
	// The archive latches the first spill error (injected or real), so a
	// failing spill degrades loudly through Stats, never silently.
	c.Archived.SetSpill(faults.Writer(opts.Faults, faults.PointArchiveSpill, spill))

	// 5. Tier reconcile: a crash between the sweep's archive-Put and
	// hot-store delete leaves a job in both tiers. The hot copy wins — the
	// retention sweep will re-archive it — so the archive entry is
	// tombstoned (which now also spills the tombstone).
	for _, name := range c.Archived.Names() {
		if _, _, err := c.Jobs.Get(name); err == nil {
			c.Archived.Remove(name)
			m.replay.TombstonedJobs++
		}
	}

	// 6. UID floor: never re-mint an identifier the previous process issued.
	var floor int64
	for _, shim := range m.shims {
		shim.eachUID(func(uid, name string) {
			if n := uidSuffix(uid); n > floor {
				floor = n
			}
			if n := uidSuffix(name); n > floor {
				floor = n
			}
		})
	}
	c.EnsureUIDFloor(floor)

	// 7. Attach the WAL sinks. From here every mutation is logged — which
	// is exactly why the orphan requeue below comes after: the requeue
	// transitions must themselves survive the next crash.
	if err := m.openWriters(); err != nil {
		return nil, err
	}
	for i, shim := range m.shims {
		shim.attachSink(m.writers[m.shims[i].storeName()], m.noteWALErr)
	}

	// 8. Orphan requeue: replayed Running jobs have no container behind
	// them any more.
	m.replay.RequeuedJobs = c.RequeueOrphanedRunning("requeued: node process restarted")

	m.replay.DurationMillis = time.Since(start).Milliseconds()
	return m, nil
}

// readSnapshot loads and decodes the snapshot file, returning nil when no
// snapshot exists. Leftover atomic-write temp files are removed.
func (m *Manager) readSnapshot() (*snapshotFile, error) {
	if tmp, err := filepath.Glob(m.snapshotPath() + ".tmp*"); err == nil {
		for _, t := range tmp {
			os.Remove(t)
		}
	}
	payload, err := wal.ReadFileChecked(m.snapshotPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durability: snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("durability: snapshot: %w", err)
	}
	return &snap, nil
}

type logKey struct {
	store string
	shard int
}

// listLogs scans the wal directory and groups generation numbers by
// (store, shard). Unrecognised files are ignored.
func (m *Manager) listLogs() (map[logKey][]int64, int64, error) {
	entries, err := os.ReadDir(m.walDir())
	if err != nil {
		return nil, 0, fmt.Errorf("durability: %w", err)
	}
	logs := make(map[logKey][]int64)
	var maxGen int64
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".wal")
		if !ok || e.IsDir() {
			continue
		}
		gi := strings.LastIndex(name, "-g")
		si := strings.LastIndex(name[:max(gi, 0)], "-s")
		if gi < 0 || si < 0 {
			continue
		}
		gen, err1 := strconv.ParseInt(name[gi+2:], 10, 64)
		shard, err2 := strconv.Atoi(name[si+2 : gi])
		if err1 != nil || err2 != nil {
			continue
		}
		k := logKey{store: name[:si], shard: shard}
		logs[k] = append(logs[k], gen)
		if gen > maxGen {
			maxGen = gen
		}
	}
	return logs, maxGen, nil
}

// replayFile replays one shard log, truncating a torn tail to its valid
// prefix so the writer can keep appending to the same file.
func (m *Manager) replayFile(shim storeShim, path string, floor int64) error {
	res, err := wal.ScanFile(path)
	if err != nil {
		return fmt.Errorf("durability: %s: %w", path, err)
	}
	if res.Truncated {
		if err := wal.TruncateFile(path, res.ValidBytes); err != nil {
			return fmt.Errorf("durability: %s: %w", path, err)
		}
		m.replay.TruncatedTails++
	}
	for _, rec := range res.Records {
		var wr walRecord
		if err := json.Unmarshal(rec, &wr); err != nil {
			return fmt.Errorf("durability: %s: %w", path, err)
		}
		if wr.V <= floor {
			m.replay.SkippedRecords++
			continue
		}
		if err := shim.replay(wr.T, wr.O, wr.V); err != nil {
			return err
		}
		m.replay.ReplayedRecords++
	}
	return nil
}

// openWriters opens one appending writer per (store, shard) at the current
// generation — reusing the latest on-disk files, whose torn tails replay
// already truncated away.
func (m *Manager) openWriters() error {
	gen := m.gen.Load()
	for _, shim := range m.shims {
		ws := make([]*wal.Writer, shim.shardCount())
		for i := range ws {
			w, err := wal.OpenWriter(m.walPath(shim.storeName(), i, gen), m.opts.Fsync)
			if err != nil {
				return fmt.Errorf("durability: %w", err)
			}
			w.SetFaults(m.opts.Faults)
			ws[i] = w
		}
		m.writers[shim.storeName()] = ws
	}
	return nil
}

// removeGensBelow deletes log files of generations before gen.
func (m *Manager) removeGensBelow(logs map[logKey][]int64, gen int64) {
	for k, gens := range logs {
		for _, g := range gens {
			if g < gen {
				os.Remove(m.walPath(k.store, k.shard, g))
			}
		}
	}
}

// uidSuffix parses the numeric tail of a "<prefix>-<n>" identifier,
// returning 0 for anything else.
func uidSuffix(s string) int64 {
	i := strings.LastIndexByte(s, '-')
	if i < 0 || i == len(s)-1 {
		return 0
	}
	n, err := strconv.ParseInt(s[i+1:], 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func (m *Manager) noteWALErr(err error) {
	m.mu.Lock()
	if m.walErr == nil {
		m.walErr = err
	}
	m.mu.Unlock()
}

// Snapshot compacts the logs: rotate every writer to the next generation,
// dump every shard under its lock into one atomically-replaced snapshot
// file, then delete the previous generation's logs. Safe to call from the
// admin endpoint and the background loop concurrently; calls serialise.
func (m *Manager) Snapshot() (int64, error) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	oldGen := m.gen.Load()
	newGen := oldGen + 1

	// Note whether durability is entering this snapshot degraded: a
	// successful snapshot heals the latch, and the heal itself must stay
	// visible (ops surfaces show walErrorClears) or the episode vanishes
	// the moment it ends. Check before Rotate — rotation clears the
	// per-writer latches.
	wasLatched := false
	for _, ws := range m.writers {
		for _, w := range ws {
			if w.Err() != nil {
				wasLatched = true
			}
		}
	}
	m.mu.Lock()
	if m.walErr != nil {
		wasLatched = true
	}
	m.mu.Unlock()

	// Rotate first: from this point every new append lands in generation
	// newGen. Records already in older files were emitted — under their
	// shard's lock — before the rotation, so the dumps below cover them.
	for _, shim := range m.shims {
		ws := m.writers[shim.storeName()]
		for i, w := range ws {
			if err := w.Rotate(m.walPath(shim.storeName(), i, newGen)); err != nil {
				return 0, fmt.Errorf("durability: rotate: %w", err)
			}
		}
	}

	snap := snapshotFile{Gen: newGen, TakenAt: time.Now(), Stores: make(map[string]snapshotStore)}
	for _, shim := range m.shims {
		ss := snapshotStore{Marks: make([]int64, shim.shardCount())}
		for i := 0; i < shim.shardCount(); i++ {
			mark, err := shim.dumpShard(i, func(raw json.RawMessage, version int64) error {
				ss.Objects = append(ss.Objects, snapshotObject{V: version, O: append(json.RawMessage(nil), raw...)})
				return nil
			})
			if err != nil {
				return 0, err
			}
			ss.Marks[i] = mark
		}
		snap.Stores[shim.storeName()] = ss
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return 0, fmt.Errorf("durability: snapshot encode: %w", err)
	}
	if err := wal.WriteFileAtomic(m.snapshotPath(), payload); err != nil {
		return 0, fmt.Errorf("durability: snapshot write: %w", err)
	}
	m.gen.Store(newGen)

	// The snapshot is durable; every generation before it is dead weight
	// (including stragglers a crashed cleanup left behind).
	if logs, _, err := m.listLogs(); err == nil {
		m.removeGensBelow(logs, newGen)
	}
	m.mu.Lock()
	m.lastSnap = snap.TakenAt
	m.snapshots++
	// A successful snapshot re-establishes durability: every object is in
	// the snapshot file and the rotated writers start clean, so the latched
	// "mutations since are not durable" warning no longer describes the
	// directory. (Writer.Rotate cleared the per-writer latches above.)
	m.walErr = nil
	if wasLatched {
		m.errClears++
		m.lastClearAt = snap.TakenAt
	}
	m.mu.Unlock()
	return newGen, nil
}

// Run drives periodic snapshots until the context ends. core wires it into
// the orchestrator's Start/Stop lifecycle.
func (m *Manager) Run(ctx context.Context) {
	interval := m.opts.SnapshotInterval
	if interval == 0 {
		interval = DefaultSnapshotInterval
	}
	if interval < 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := m.Snapshot(); err != nil {
				m.noteWALErr(err)
			}
		}
	}
}

// Stats assembles the admin-surface view.
func (m *Manager) Stats() Stats {
	var records, bytes int64
	var werr error
	for _, ws := range m.writers {
		for _, w := range ws {
			r, b := w.Stats()
			records += r
			bytes += b
			if werr == nil {
				werr = w.Err()
			}
		}
	}
	m.mu.Lock()
	if werr == nil {
		werr = m.walErr
	}
	st := Stats{
		Enabled:               true,
		Dir:                   m.opts.Dir,
		Fsync:                 m.opts.Fsync,
		Generation:            m.gen.Load(),
		WALRecords:            records,
		WALBytes:              bytes,
		Snapshots:             m.snapshots,
		Replay:                m.replay,
		WALErrorClears:        m.errClears,
		LastWALErrorClearedAt: m.lastClearAt,
	}
	if !m.lastSnap.IsZero() {
		st.LastSnapshotAt = m.lastSnap
		st.LastSnapshotAge = time.Since(m.lastSnap).Round(time.Millisecond).String()
	}
	m.mu.Unlock()
	if werr != nil {
		st.WALError = werr.Error()
	}
	if serr := m.cluster.Archived.SpillErr(); serr != nil {
		st.SpillError = serr.Error()
	}
	return st
}

// Close flushes and closes every writer and the spill file. The cluster
// must be quiesced first (no loops running).
func (m *Manager) Close() error {
	var first error
	for _, ws := range m.writers {
		for _, w := range ws {
			if err := w.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if m.spill != nil {
		if err := m.spill.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
