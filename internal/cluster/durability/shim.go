package durability

import (
	"encoding/json"
	"fmt"

	"qrio/internal/cluster/store"
	"qrio/internal/cluster/wal"
)

// walRecord is the JSON wire form of one logged mutation: event type,
// resource version, object payload. Short keys keep the per-record framing
// overhead small — the WAL is the hot write path.
type walRecord struct {
	T store.EventType `json:"t"`
	V int64           `json:"v"`
	O json.RawMessage `json:"o"`
}

// storeShim erases the store's element type so the manager can drive five
// heterogeneous stores through one boot/snapshot/attach flow.
type storeShim interface {
	storeName() string
	shardCount() int
	setFloor(marks []int64) error
	restore(raw json.RawMessage, version int64) error
	replay(t store.EventType, raw json.RawMessage, version int64) error
	// dumpShard serialises every object of shard i through fn and returns
	// the shard's emission high-water mark.
	dumpShard(i int, fn func(raw json.RawMessage, version int64) error) (int64, error)
	// attachSink registers a store hook that appends every future mutation
	// to the writer of its shard. Must be called after replay (so replayed
	// events are not re-logged) and before the store serves live traffic.
	attachSink(writers []*wal.Writer, onErr func(error))
	// eachUID passes every object's UID (and name, which for some stores is
	// also minted from the UID counter) to fn, for the boot-time UID floor.
	eachUID(fn func(uid, name string))
}

// typedShim adapts one Store[T] to the storeShim interface.
type typedShim[T any] struct {
	label string
	s     *store.Store[T]
	// uid extracts the minted identifiers from an object.
	uid func(T) (uid, name string)
}

func (ts *typedShim[T]) storeName() string { return ts.label }
func (ts *typedShim[T]) shardCount() int   { return ts.s.Shards() }

func (ts *typedShim[T]) setFloor(marks []int64) error { return ts.s.SetShardFloor(marks) }

func (ts *typedShim[T]) restore(raw json.RawMessage, version int64) error {
	var obj T
	if err := json.Unmarshal(raw, &obj); err != nil {
		return fmt.Errorf("durability: %s snapshot object: %w", ts.label, err)
	}
	return ts.s.Restore(obj, version)
}

func (ts *typedShim[T]) replay(t store.EventType, raw json.RawMessage, version int64) error {
	var obj T
	if err := json.Unmarshal(raw, &obj); err != nil {
		return fmt.Errorf("durability: %s wal object: %w", ts.label, err)
	}
	return ts.s.Replay(store.WatchEvent[T]{Type: t, Object: obj, Version: version})
}

func (ts *typedShim[T]) dumpShard(i int, fn func(raw json.RawMessage, version int64) error) (int64, error) {
	var ferr error
	mark := ts.s.DumpShard(i, func(obj T, version int64) {
		if ferr != nil {
			return
		}
		raw, err := json.Marshal(obj)
		if err != nil {
			ferr = fmt.Errorf("durability: %s dump: %w", ts.label, err)
			return
		}
		ferr = fn(raw, version)
	})
	return mark, ferr
}

func (ts *typedShim[T]) attachSink(writers []*wal.Writer, onErr func(error)) {
	ts.s.OnEvent(func(ev store.WatchEvent[T]) {
		raw, err := json.Marshal(ev.Object)
		if err != nil {
			onErr(fmt.Errorf("durability: %s encode: %w", ts.label, err))
			return
		}
		rec, err := json.Marshal(walRecord{T: ev.Type, V: ev.Version, O: raw})
		if err != nil {
			onErr(fmt.Errorf("durability: %s encode: %w", ts.label, err))
			return
		}
		if err := writers[ev.Shard].Append(rec); err != nil {
			onErr(fmt.Errorf("durability: %s wal append: %w", ts.label, err))
		}
	})
}

func (ts *typedShim[T]) eachUID(fn func(uid, name string)) {
	ts.s.Range(func(obj T, _ int64) bool {
		u, n := ts.uid(obj)
		fn(u, n)
		return true
	})
}
