package kubelet_test

import (
	"context"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/kubelet"
	"qrio/internal/cluster/state"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/master"
	"qrio/internal/registry"
)

// TestRunLoopExecutesAndHeartbeats drives the kubelet through its own Run
// loop (watch + tick + heartbeat) rather than SyncOnce.
func TestRunLoopExecutesAndHeartbeats(t *testing.T) {
	st := state.New()
	b, err := device.UniformBackend("looper", graph.Line(6), 0.05, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddNode(b); err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	m := master.NewServer(st, reg)

	k := kubelet.New("looper", st, reg, 5)
	k.Interval = 5 * time.Millisecond
	k.Heartbeat = 5 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		k.Run(ctx)
		close(done)
	}()

	before, _, _ := st.Nodes.Get("looper")
	if _, err := m.Submit(master.SubmitRequest{
		JobName: "loop-job", QASM: ghzQASM, Shots: 64,
		Strategy: api.StrategyFidelity, TargetFidelity: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.BindJob("loop-job", "looper", 0.1); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		j, _, _ := st.Jobs.Get("loop-job")
		if j.Status.Phase.Terminal() {
			if j.Status.Phase != api.JobSucceeded {
				t.Fatalf("phase = %s (%s)", j.Status.Phase, j.Status.Message)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run loop never executed the job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Heartbeats must have advanced the node's timestamp.
	time.Sleep(20 * time.Millisecond)
	after, _, _ := st.Nodes.Get("looper")
	if !after.Status.LastHeartbeat.After(before.Status.LastHeartbeat) {
		t.Fatal("no heartbeat recorded")
	}

	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("run loop did not stop on context cancel")
	}
}

// TestHeartbeatRevivesNotReadyNode: a node marked NotReady (e.g. by the
// controller after a hiccup) returns to Ready on its next heartbeat.
func TestHeartbeatRevivesNotReadyNode(t *testing.T) {
	st := state.New()
	b, err := device.UniformBackend("reviver", graph.Line(4), 0.05, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	st.AddNode(b)
	st.Nodes.Update("reviver", func(n api.Node) (api.Node, error) {
		n.Status.Phase = api.NodeNotReady
		return n, nil
	})
	k := kubelet.New("reviver", st, registry.New(), 1)
	k.Interval = time.Millisecond
	k.Heartbeat = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	go k.Run(ctx)
	deadline := time.Now().Add(250 * time.Millisecond)
	for time.Now().Before(deadline) {
		n, _, _ := st.Nodes.Get("reviver")
		if n.Status.Phase == api.NodeReady {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("heartbeat did not revive the node")
}
