package kubelet_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/fidelity"
)

// TestCancelRunningJobAbortsAndFreesSlot drives the running-job
// cancellation path end to end at the kubelet layer: a container that
// would run forever is aborted via its context, the job lands in the
// terminal Cancelled phase, and the node slot frees for the next job.
func TestCancelRunningJobAbortsAndFreesSlot(t *testing.T) {
	k, st := setup(t, 0.02)
	started := make(chan struct{})
	aborted := make(chan struct{})
	k.Runtime = func(ctx context.Context, j api.QuantumJob) ([]string, *fidelity.Execution, error) {
		close(started)
		<-ctx.Done() // a conforming runtime honours the abort
		close(aborted)
		return nil, nil, ctx.Err()
	}
	k.Interval = time.Millisecond
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	done := make(chan struct{})
	go func() { k.Run(ctx); close(done) }()

	select {
	case <-started: // claim happened before the runtime was invoked
	case <-time.After(5 * time.Second):
		t.Fatal("kubelet never started the bound job")
	}
	j, _, _ := st.Jobs.Get("ghz")
	if j.Status.Phase != api.JobRunning {
		t.Fatalf("phase at runtime start = %s", j.Status.Phase)
	}

	if _, err := st.CancelJob("ghz"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, _, _ = st.Jobs.Get("ghz")
		n, _, _ := st.Nodes.Get("node-a")
		if j.Status.Phase == api.JobCancelled && len(n.Status.RunningJobs) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never landed: phase=%s node=%v", j.Status.Phase, n.Status.RunningJobs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case <-aborted: // the container's context really was cancelled
	case <-time.After(5 * time.Second):
		t.Fatal("runtime context never cancelled")
	}
	if !strings.Contains(j.Status.Message, "cancelled by user") {
		t.Fatalf("unhelpful message: %q", j.Status.Message)
	}
	res, _, err := st.Results.Get("ghz")
	if err != nil || len(res.LogLines) == 0 {
		t.Fatalf("cancelled job has no result log: %v", err)
	}
	stop()
	<-done
}

// TestCancelScheduledJobBeatsKubelet cancels a job while it is bound but
// before any kubelet claims it: the kubelet must not resurrect it.
func TestCancelScheduledJobBeatsKubelet(t *testing.T) {
	k, st := setup(t, 0.02)
	if _, err := st.CancelJob("ghz"); err != nil {
		t.Fatal(err)
	}
	if ran := k.SyncOnce(); ran {
		t.Fatal("kubelet executed a cancelled job")
	}
	j, _, _ := st.Jobs.Get("ghz")
	if j.Status.Phase != api.JobCancelled {
		t.Fatalf("phase = %s", j.Status.Phase)
	}
	n, _, _ := st.Nodes.Get("node-a")
	if len(n.Status.RunningJobs) != 0 {
		t.Fatalf("slot not freed: %v", n.Status.RunningJobs)
	}
}
