package kubelet_test

import (
	"strings"
	"testing"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/kubelet"
	"qrio/internal/cluster/state"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/master"
	"qrio/internal/registry"
)

const ghzQASM = `OPENQASM 2.0;
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
measure q -> c;
`

// setup builds a one-node cluster with a job bound to it via the master.
func setup(t *testing.T, e2 float64) (*kubelet.Kubelet, *state.Cluster) {
	t.Helper()
	st := state.New()
	b, err := device.UniformBackend("node-a", graph.Line(6), e2, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddNode(b); err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	m := master.NewServer(st, reg)
	if _, err := m.Submit(master.SubmitRequest{
		JobName: "ghz", QASM: ghzQASM, Shots: 256,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.BindJob("ghz", "node-a", 0.1); err != nil {
		t.Fatal(err)
	}
	return kubelet.New("node-a", st, reg, 3), st
}

func TestExecutesBoundJob(t *testing.T) {
	k, st := setup(t, 0.02)
	if ran := k.SyncOnce(); !ran {
		t.Fatal("kubelet did not pick up the bound job")
	}
	j, _, _ := st.Jobs.Get("ghz")
	if j.Status.Phase != api.JobSucceeded {
		t.Fatalf("job phase = %s (%s)", j.Status.Phase, j.Status.Message)
	}
	if j.Status.Attempts != 1 || j.Status.StartedAt == nil || j.Status.FinishedAt == nil {
		t.Fatalf("status bookkeeping wrong: %+v", j.Status)
	}
	res, _, err := st.Results.Get("ghz")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 256 {
		t.Fatalf("shot count = %d, want 256", total)
	}
	if res.Fidelity <= 0.5 {
		t.Fatalf("fidelity = %v on a clean device", res.Fidelity)
	}
	if !strings.Contains(strings.Join(res.LogLines, "\n"), "succeeded") {
		t.Fatalf("logs incomplete: %v", res.LogLines)
	}
	// Node released.
	n, _, _ := st.Nodes.Get("node-a")
	if len(n.Status.RunningJobs) != 0 {
		t.Fatalf("node not released: %+v", n.Status)
	}
}

// TestRunsConcurrentContainers: a node with two container slots executes
// two bound jobs in a single sync, and both actually overlap (each job
// observes the other in flight via the shared state).
func TestRunsConcurrentContainers(t *testing.T) {
	st := state.New()
	b, err := device.UniformBackend("wide", graph.Line(6), 0.02, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddNode(b); err != nil {
		t.Fatal(err)
	}
	st.Nodes.Update("wide", func(n api.Node) (api.Node, error) {
		n.Spec.MaxContainers = 2
		return n, nil
	})
	reg := registry.New()
	m := master.NewServer(st, reg)
	for _, name := range []string{"ghz-a", "ghz-b"} {
		if _, err := m.Submit(master.SubmitRequest{
			JobName: name, QASM: ghzQASM, Shots: 256,
			Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
		}); err != nil {
			t.Fatal(err)
		}
		if err := st.BindJob(name, "wide", 0.1); err != nil {
			t.Fatal(err)
		}
	}
	n, _, _ := st.Nodes.Get("wide")
	if len(n.Status.RunningJobs) != 2 {
		t.Fatalf("bound containers = %v", n.Status.RunningJobs)
	}
	k := kubelet.New("wide", st, reg, 7)
	if ran := k.SyncOnce(); !ran {
		t.Fatal("kubelet did not pick up the bound jobs")
	}
	overlapped := false
	for _, name := range []string{"ghz-a", "ghz-b"} {
		j, _, _ := st.Jobs.Get(name)
		if j.Status.Phase != api.JobSucceeded {
			t.Fatalf("%s phase = %s (%s)", name, j.Status.Phase, j.Status.Message)
		}
		other := "ghz-b"
		if name == "ghz-b" {
			other = "ghz-a"
		}
		oj, _, _ := st.Jobs.Get(other)
		// Overlap: this job started before the other finished.
		if j.Status.StartedAt != nil && oj.Status.FinishedAt != nil &&
			j.Status.StartedAt.Before(*oj.Status.FinishedAt) {
			overlapped = true
		}
	}
	if !overlapped {
		t.Fatal("containers ran strictly serially on a two-slot node")
	}
	n, _, _ = st.Nodes.Get("wide")
	if len(n.Status.RunningJobs) != 0 {
		t.Fatalf("slots not released: %v", n.Status.RunningJobs)
	}
}

func TestIgnoresJobsForOtherNodes(t *testing.T) {
	_, st := setup(t, 0.02)
	other := kubelet.New("node-b", st, registry.New(), 1)
	if ran := other.SyncOnce(); ran {
		t.Fatal("kubelet executed another node's job")
	}
	j, _, _ := st.Jobs.Get("ghz")
	if j.Status.Phase != api.JobScheduled {
		t.Fatalf("job phase = %s", j.Status.Phase)
	}
}

func TestBrokenImageFailsJob(t *testing.T) {
	st := state.New()
	b, _ := device.UniformBackend("node-a", graph.Line(4), 0.1, 0.01, 0.05, 100e3, 100e3)
	st.AddNode(b)
	reg := registry.New() // empty: pull will fail
	st.SubmitJob(api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: "broken"},
		Spec: api.JobSpec{
			QASM: ghzQASM, Image: "ghost:latest",
			Strategy: api.StrategyFidelity, TargetFidelity: 1,
		},
	})
	st.BindJob("broken", "node-a", 0)
	k := kubelet.New("node-a", st, reg, 1)
	k.SyncOnce()
	j, _, _ := st.Jobs.Get("broken")
	if j.Status.Phase != api.JobFailed {
		t.Fatalf("job with missing image: phase = %s", j.Status.Phase)
	}
	if !strings.Contains(j.Status.Message, "pulling image") {
		t.Fatalf("unhelpful failure message: %q", j.Status.Message)
	}
	// Failure must still produce logs and release the node.
	res, _, err := st.Results.Get("broken")
	if err != nil || len(res.LogLines) == 0 {
		t.Fatalf("failed job has no logs: %v", err)
	}
	n, _, _ := st.Nodes.Get("node-a")
	if len(n.Status.RunningJobs) != 0 {
		t.Fatal("node not released after failure")
	}
}

func TestOversizedCircuitFailsCleanly(t *testing.T) {
	st := state.New()
	b, _ := device.UniformBackend("tiny", graph.Line(2), 0.1, 0.01, 0.05, 100e3, 100e3)
	st.AddNode(b)
	reg := registry.New()
	m := master.NewServer(st, reg)
	if _, err := m.Submit(master.SubmitRequest{
		JobName: "big", QASM: ghzQASM, // 3 qubits on a 2-qubit device
		Strategy: api.StrategyFidelity, TargetFidelity: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// Force-bind despite the size mismatch (bypassing filters) to test the
	// kubelet's own error handling.
	if err := st.BindJob("big", "tiny", 0); err != nil {
		t.Fatal(err)
	}
	k := kubelet.New("tiny", st, reg, 1)
	k.SyncOnce()
	j, _, _ := st.Jobs.Get("big")
	if j.Status.Phase != api.JobFailed {
		t.Fatalf("oversized job phase = %s", j.Status.Phase)
	}
}
