// Package kubelet implements QRIO's node agent: each worker node runs one,
// watching the cluster state for jobs bound to it, pulling the job's image
// bundle from the registry, transpiling the bundled circuit to the node's
// local backend file and executing it (§3.1/§3.3), then publishing the
// result logs and releasing the node's container slot. Nodes whose spec
// grants more than one container slot execute that many bound jobs
// concurrently; the paper's default of one slot keeps execution serial.
package kubelet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"qrio/internal/clock"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/faults"
	"qrio/internal/fidelity"
	"qrio/internal/master"
	"qrio/internal/quantum/qasm"
	"qrio/internal/registry"
)

// RuntimeFunc executes one job's container and returns its log lines and
// execution record. The context is cancelled when the user cancels the job
// (DELETE /v1/jobs/{name}) — a conforming runtime aborts promptly, but the
// kubelet also abandons runtimes that ignore cancellation, so the node
// slot is freed either way.
type RuntimeFunc func(ctx context.Context, j api.QuantumJob) ([]string, *fidelity.Execution, error)

// Kubelet is one node's agent.
type Kubelet struct {
	NodeName string
	State    *state.Cluster
	Registry *registry.Registry
	// Interval is the reconcile cadence (default 10ms).
	Interval time.Duration
	// Heartbeat cadence for node liveness (default 250ms).
	Heartbeat time.Duration
	// Seed makes executions reproducible per node.
	Seed int64
	// Clock is the kubelet's time source (StartedAt/FinishedAt stamps,
	// elapsed-time logs). Nil means the wall clock.
	Clock clock.Clock
	// Runtime is the container runtime seam; nil selects the built-in
	// simulator-backed executor. Tests and alternative execution backends
	// inject here.
	Runtime RuntimeFunc
	// Faults is the fault-injection registry; the kubelet.runtime point
	// fires before every container invocation, so an armed registry turns
	// executions into failures (→ controller retry), added latency or
	// hangs (→ aborted by cancellation). Nil resolves to faults.Default.
	Faults *faults.Registry

	mu       sync.Mutex
	inflight map[string]context.CancelFunc
	jobs     sync.WaitGroup
}

// New builds a kubelet for a node.
func New(nodeName string, st *state.Cluster, reg *registry.Registry, seed int64) *Kubelet {
	return &Kubelet{
		NodeName:  nodeName,
		State:     st,
		Registry:  reg,
		Interval:  10 * time.Millisecond,
		Heartbeat: 250 * time.Millisecond,
		Seed:      seed,
		Clock:     clock.Real{},
		inflight:  make(map[string]context.CancelFunc),
	}
}

// now reads the kubelet's clock.
func (k *Kubelet) now() time.Time { return clock.Now(k.Clock) }

// Run reconciles until the context is cancelled, then waits for in-flight
// containers to finish so no execution outlives the agent.
func (k *Kubelet) Run(ctx context.Context) {
	interval := k.Interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	hb := k.Heartbeat
	if hb <= 0 {
		hb = 250 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	beat := time.NewTicker(hb)
	defer k.jobs.Wait()
	defer tick.Stop()
	defer beat.Stop()
	events, cancel := k.State.Jobs.Watch(128)
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return
		case <-beat.C:
			k.heartbeat()
		case <-events:
			k.reapCancelled()
			k.launch()
		case <-tick.C:
			k.reapCancelled()
			k.launch()
		}
	}
}

func (k *Kubelet) heartbeat() {
	k.State.Nodes.Update(k.NodeName, func(n api.Node) (api.Node, error) {
		n.Status.LastHeartbeat = k.now()
		if n.Status.Phase == api.NodeNotReady {
			n.Status.Phase = api.NodeReady
		}
		return n, nil
	})
}

// slots reads the node's container capacity from its spec (1 when the
// node is unknown, matching the paper's serial execution).
func (k *Kubelet) slots() int {
	n, _, err := k.State.Nodes.Get(k.NodeName)
	if err != nil {
		return 1
	}
	return n.ContainerSlots()
}

// launch starts a container goroutine for every bound job this node has a
// free slot for, without waiting for them, and returns the launched job
// names (oldest bindings first, for determinism).
func (k *Kubelet) launch() []string {
	// The cluster's scheduled-by-node index answers "what is bound to me?"
	// in O(jobs on this node), already sorted oldest-first — the previous
	// implementation walked (and lock-touched) every job in the cluster on
	// every launch tick.
	runnable := k.State.ScheduledJobs(k.NodeName)
	slots := k.slots()
	var started []string
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.inflight == nil { // zero-value Kubelet, built without New
		k.inflight = make(map[string]context.CancelFunc)
	}
	for _, j := range runnable {
		if len(k.inflight) >= slots {
			break
		}
		name := j.Name
		if _, busy := k.inflight[name]; busy {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		k.inflight[name] = cancel
		k.jobs.Add(1)
		started = append(started, name)
		go func() {
			defer k.jobs.Done()
			defer func() {
				k.mu.Lock()
				delete(k.inflight, name)
				k.mu.Unlock()
				cancel()
			}()
			k.runJob(ctx, name)
		}()
	}
	return started
}

// reapCancelled aborts the containers of in-flight jobs whose user asked
// for cancellation. Called from the watch/tick loop, so a dropped watch
// event only delays the abort by one reconcile interval.
func (k *Kubelet) reapCancelled() {
	k.mu.Lock()
	names := make([]string, 0, len(k.inflight))
	for name := range k.inflight {
		names = append(names, name)
	}
	k.mu.Unlock()
	for _, name := range names {
		j, _, err := k.State.Jobs.Get(name)
		if err != nil || j.Status.Phase != api.JobRunning || !j.Status.CancelRequested {
			continue
		}
		k.mu.Lock()
		if cancel, ok := k.inflight[name]; ok {
			cancel()
		}
		k.mu.Unlock()
	}
}

// SyncOnce launches every runnable job bound to this node (up to its free
// container slots) and waits for the batch to finish — the synchronous
// reconcile used by tests and single-step drivers. It returns true when at
// least one job ran.
func (k *Kubelet) SyncOnce() bool {
	k.reapCancelled()
	started := k.launch()
	k.jobs.Wait()
	return len(started) > 0
}

// execOutcome carries a finished runtime invocation across the abort select.
type execOutcome struct {
	logs []string
	ex   *fidelity.Execution
	err  error
}

// runJob drives one job through Running to a terminal phase. The context
// is this job's container lifetime: reapCancelled cancels it when the user
// requests cancellation, at which point the container is aborted — the
// runtime gets the cancelled context, and even a non-cooperative runtime
// is abandoned so the job reaches JobCancelled and the slot frees
// immediately.
func (k *Kubelet) runJob(ctx context.Context, jobName string) {
	start := k.now()
	claimed, _, err := k.State.Jobs.Update(jobName, func(j api.QuantumJob) (api.QuantumJob, error) {
		if j.Status.Phase != api.JobScheduled || j.Status.Node != k.NodeName {
			return j, fmt.Errorf("kubelet: job no longer ours")
		}
		j.Status.Phase = api.JobRunning
		j.Status.Attempts++
		t := k.now()
		j.Status.StartedAt = &t
		return j, nil
	})
	if err != nil {
		return // lost the claim; nothing to clean up
	}
	runtime := k.Runtime
	if runtime == nil {
		runtime = k.execute
	}
	outcome := make(chan execOutcome, 1)
	go func() {
		// The runtime fault point models the container engine failing or
		// wedging: an injected error takes the normal failed-execution path
		// (controller retry policy applies); a hang blocks here until
		// cancellation, exactly like a stuck container.
		if err := k.Faults.Fire(ctx, faults.PointKubeletRuntime); err != nil {
			outcome <- execOutcome{err: err}
			return
		}
		logs, ex, err := runtime(ctx, claimed)
		outcome <- execOutcome{logs: logs, ex: ex, err: err}
	}()
	finish := func(o execOutcome) {
		if ctx.Err() != nil && o.err != nil && errors.Is(o.err, context.Canceled) {
			k.finishCancelled(jobName, start)
			return
		}
		k.finishExecuted(jobName, start, o)
	}
	select {
	case o := <-outcome:
		finish(o)
	case <-ctx.Done():
		// Cancellation landed — but if the runtime finished at the same
		// instant, prefer its real result over a fabricated abort record
		// (the user's cancel then simply lost the race with completion).
		select {
		case o := <-outcome:
			finish(o)
		default:
			// The runtime result (if it ever arrives) is discarded: the
			// send targets a buffered channel, so the goroutine cannot
			// leak.
			k.finishCancelled(jobName, start)
		}
	}
}

// finishExecuted publishes a completed execution: result record, terminal
// phase, slot release and event — the original success/failure path.
func (k *Kubelet) finishExecuted(jobName string, start time.Time, o execOutcome) {
	end := k.now()
	elapsed := end.Sub(start).Milliseconds()
	logs, result, execErr := o.logs, o.ex, o.err

	if execErr != nil {
		logs = append(logs, fmt.Sprintf("[qrio] ERROR: %v", execErr))
	}
	res := api.Result{
		ObjectMeta: api.ObjectMeta{Name: jobName},
		JobName:    jobName,
		Node:       k.NodeName,
		LogLines:   logs,
		ElapsedMS:  elapsed,
	}
	if result != nil {
		res.Counts = result.Counts
		res.Fidelity = result.Fidelity
		if qasmText, err := qasm.Dump(result.Transpiled); err == nil {
			res.TranspiledQASM = qasmText
		}
	}
	// Results are keyed by job name; a retry overwrites the previous log.
	if _, err := k.State.Results.Create(res); err != nil {
		k.State.Results.Update(jobName, func(api.Result) (api.Result, error) { return res, nil })
	}

	_, _, err := k.State.Jobs.Update(jobName, func(j api.QuantumJob) (api.QuantumJob, error) {
		if j.Status.Phase != api.JobRunning || j.Status.Node != k.NodeName {
			return j, fmt.Errorf("kubelet: job no longer ours")
		}
		t := k.now()
		j.Status.FinishedAt = &t
		if execErr != nil {
			j.Status.Phase = api.JobFailed
			j.Status.Message = execErr.Error()
		} else {
			j.Status.Phase = api.JobSucceeded
			j.Status.Message = fmt.Sprintf("fidelity %.4f on %s", res.Fidelity, k.NodeName)
		}
		return j, nil
	})
	if err != nil {
		return // another actor finalised the job; it owns release + events
	}
	if rerr := k.State.ReleaseNode(k.NodeName, jobName); rerr != nil {
		k.State.LatchReleaseFailure(k.NodeName, jobName, rerr)
	}
	reason := "Succeeded"
	if execErr != nil {
		reason = "Failed"
	}
	k.State.RecordEvent("Job", jobName, reason,
		fmt.Sprintf("executed on %s in %dms", k.NodeName, elapsed))
}

// finishCancelled lands a user-requested abort: terminal JobCancelled
// phase, a minimal result log, slot release and event.
func (k *Kubelet) finishCancelled(jobName string, start time.Time) {
	end := k.now()
	elapsed := end.Sub(start).Milliseconds()
	_, _, err := k.State.Jobs.Update(jobName, func(j api.QuantumJob) (api.QuantumJob, error) {
		if j.Status.Phase != api.JobRunning || j.Status.Node != k.NodeName {
			return j, fmt.Errorf("kubelet: job no longer ours")
		}
		t := k.now()
		j.Status.Phase = api.JobCancelled
		j.Status.FinishedAt = &t
		j.Status.Message = fmt.Sprintf("cancelled by user; container aborted on %s", k.NodeName)
		return j, nil
	})
	if err != nil {
		return // someone else finished the job first
	}
	res := api.Result{
		ObjectMeta: api.ObjectMeta{Name: jobName},
		JobName:    jobName,
		Node:       k.NodeName,
		LogLines: []string{
			fmt.Sprintf("[qrio] job %s starting on node %s", jobName, k.NodeName),
			fmt.Sprintf("[qrio] job %s cancelled by user after %dms; container aborted", jobName, elapsed),
		},
		ElapsedMS: elapsed,
	}
	if _, err := k.State.Results.Create(res); err != nil {
		k.State.Results.Update(jobName, func(api.Result) (api.Result, error) { return res, nil })
	}
	if rerr := k.State.ReleaseNode(k.NodeName, jobName); rerr != nil {
		k.State.LatchReleaseFailure(k.NodeName, jobName, rerr)
	}
	k.State.RecordEvent("Job", jobName, "Cancelled",
		fmt.Sprintf("container aborted on %s after %dms", k.NodeName, elapsed))
}

// execute is the built-in runtime: it pulls the image and runs the
// bundled circuit on this node's backend, checking for cancellation at
// each stage boundary. The returned log lines mirror the Fig. 5 log view.
func (k *Kubelet) execute(ctx context.Context, j api.QuantumJob) ([]string, *fidelity.Execution, error) {
	logs := []string{
		fmt.Sprintf("[qrio] job %s starting on node %s", j.Name, k.NodeName),
	}
	if err := ctx.Err(); err != nil {
		return logs, nil, err
	}
	imgRef := j.Spec.Image
	if at := strings.LastIndex(imgRef, "@"); at >= 0 {
		imgRef = imgRef[at+1:] // pull by digest
	}
	img, err := k.Registry.Pull(imgRef)
	if err != nil {
		return logs, nil, fmt.Errorf("pulling image %s: %w", j.Spec.Image, err)
	}
	logs = append(logs, fmt.Sprintf("[qrio] pulled image %s (%d files)", j.Spec.Image, len(img.Files)))

	qasmSrc, ok := img.Files["circuit.qasm"]
	if !ok {
		return logs, nil, fmt.Errorf("image %s has no circuit.qasm", j.Spec.Image)
	}
	var manifest master.RunnerManifest
	if raw, ok := img.Files["runner.json"]; ok {
		if err := json.Unmarshal(raw, &manifest); err != nil {
			return logs, nil, fmt.Errorf("image %s runner.json corrupt: %w", j.Spec.Image, err)
		}
	}
	shots := manifest.Shots
	if shots <= 0 {
		shots = j.Spec.Shots
	}
	if shots <= 0 {
		shots = 1024
	}

	circ, err := qasm.Parse(string(qasmSrc))
	if err != nil {
		return logs, nil, fmt.Errorf("bundled circuit does not parse: %w", err)
	}
	circ.Name = j.Name

	backend, err := k.State.Backend(k.NodeName)
	if err != nil {
		return logs, nil, fmt.Errorf("reading local backend file: %w", err)
	}
	logs = append(logs, fmt.Sprintf("[qrio] backend %s: %d qubits, %d edges, avg 2q error %.4f",
		backend.Name, backend.NumQubits, backend.Coupling.NumEdges(), backend.AvgTwoQubitErr()))

	if err := ctx.Err(); err != nil {
		return logs, nil, err
	}
	est := fidelity.Estimator{Shots: shots, Seed: k.Seed + int64(len(j.Name))}
	ex, err := est.Execute(circ, backend)
	if err != nil {
		return logs, nil, err
	}
	ops := ex.Transpiled.CountOps()
	logs = append(logs,
		fmt.Sprintf("[qrio] transpiled: %d gates (%d cx), depth %d, %d swaps inserted",
			ex.Transpiled.Size(), ops["cx"], ex.Transpiled.Depth(), ex.AddedSwaps),
		fmt.Sprintf("[qrio] executed %d shots via %s simulation", shots, ex.Method),
		fmt.Sprintf("[qrio] top counts: %s", strings.Join(fidelity.TopCounts(ex.Counts, 5), " ")),
		fmt.Sprintf("[qrio] estimated fidelity: %.4f", ex.Fidelity),
		fmt.Sprintf("[qrio] job %s succeeded", j.Name),
	)
	return logs, ex, nil
}
