package controller

import (
	"fmt"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/device"
	"qrio/internal/graph"
)

// fakeClock is a controllable time source.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time          { return f.now }
func (f *fakeClock) Advance(d time.Duration) { f.now = f.now.Add(d) }

func setup(t *testing.T) (*Controller, *state.Cluster, *fakeClock) {
	t.Helper()
	st := state.New()
	b, err := device.UniformBackend("n1", graph.Line(4), 0.1, 0.01, 0.05, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddNode(b); err != nil {
		t.Fatal(err)
	}
	// Start at real time: object CreatedAt stamps come from the wall clock,
	// and the grace-period arithmetic compares the two.
	clk := &fakeClock{now: time.Now()}
	c := New(st)
	c.Clock = clk
	return c, st, clk
}

func submit(t *testing.T, st *state.Cluster, name string) {
	t.Helper()
	err := st.SubmitJob(api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: api.JobSpec{
			QASM:     "OPENQASM 2.0;\nqreg q[1];\nh q[0];",
			Strategy: api.StrategyFidelity, TargetFidelity: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStaleNodeMarkedNotReady(t *testing.T) {
	c, st, clk := setup(t)
	st.Nodes.Update("n1", func(n api.Node) (api.Node, error) {
		n.Status.LastHeartbeat = clk.Now()
		return n, nil
	})
	c.ReconcileOnce()
	n, _, _ := st.Nodes.Get("n1")
	if n.Status.Phase != api.NodeReady {
		t.Fatal("fresh node marked NotReady")
	}
	clk.Advance(10 * time.Second)
	c.ReconcileOnce()
	n, _, _ = st.Nodes.Get("n1")
	if n.Status.Phase != api.NodeNotReady {
		t.Fatal("stale node still Ready")
	}
}

func TestStrandedJobRequeued(t *testing.T) {
	c, st, clk := setup(t)
	submit(t, st, "j1")
	if err := st.BindJob("j1", "n1", 0.1); err != nil {
		t.Fatal(err)
	}
	// Node dies.
	st.Nodes.Update("n1", func(n api.Node) (api.Node, error) {
		n.Status.Phase = api.NodeNotReady
		return n, nil
	})
	// Inside the grace period nothing happens.
	c.ReconcileOnce()
	j, _, _ := st.Jobs.Get("j1")
	if j.Status.Phase != api.JobScheduled {
		t.Fatalf("requeued inside grace period: %s", j.Status.Phase)
	}
	clk.Advance(time.Minute)
	c.ReconcileOnce()
	j, _, _ = st.Jobs.Get("j1")
	if j.Status.Phase != api.JobPending || j.Status.Node != "" {
		t.Fatalf("stranded job not requeued: %+v", j.Status)
	}
	// Node resources released.
	n, _, _ := st.Nodes.Get("n1")
	if len(n.Status.RunningJobs) != 0 {
		t.Fatalf("node still holds job: %+v", n.Status)
	}
}

func TestStrandedJobOnDeletedNode(t *testing.T) {
	c, st, clk := setup(t)
	submit(t, st, "j1")
	st.BindJob("j1", "n1", 0)
	st.Nodes.Delete("n1")
	clk.Advance(time.Minute)
	c.ReconcileOnce()
	j, _, _ := st.Jobs.Get("j1")
	if j.Status.Phase != api.JobPending {
		t.Fatalf("job on deleted node not requeued: %s", j.Status.Phase)
	}
}

func TestFailedJobRetriesUpToBudget(t *testing.T) {
	c, st, _ := setup(t)
	c.MaxRetries = 2
	submit(t, st, "j1")
	fail := func(attempts int) {
		st.Jobs.Update("j1", func(j api.QuantumJob) (api.QuantumJob, error) {
			j.Status.Phase = api.JobFailed
			j.Status.Attempts = attempts
			return j, nil
		})
	}
	fail(1)
	c.ReconcileOnce()
	j, _, _ := st.Jobs.Get("j1")
	if j.Status.Phase != api.JobPending {
		t.Fatalf("first failure not retried: %s", j.Status.Phase)
	}
	fail(2)
	c.ReconcileOnce()
	j, _, _ = st.Jobs.Get("j1")
	if j.Status.Phase != api.JobPending {
		t.Fatalf("second failure not retried: %s", j.Status.Phase)
	}
	fail(3) // exceeds budget of 2 retries
	c.ReconcileOnce()
	j, _, _ = st.Jobs.Get("j1")
	if j.Status.Phase != api.JobFailed {
		t.Fatalf("retry budget ignored: %s", j.Status.Phase)
	}
}

func TestHealthyClusterUntouched(t *testing.T) {
	c, st, clk := setup(t)
	st.Nodes.Update("n1", func(n api.Node) (api.Node, error) {
		n.Status.LastHeartbeat = clk.Now()
		return n, nil
	})
	submit(t, st, "j1")
	st.BindJob("j1", "n1", 0)
	c.ReconcileOnce()
	j, _, _ := st.Jobs.Get("j1")
	if j.Status.Phase != api.JobScheduled {
		t.Fatalf("healthy scheduled job disturbed: %s", j.Status.Phase)
	}
}

func TestEventGC(t *testing.T) {
	c, st, _ := setup(t)
	c.MaxEvents = 10
	for i := 0; i < 25; i++ {
		st.RecordEvent("Job", fmt.Sprintf("j%d", i), "Test", "spam")
	}
	c.ReconcileOnce()
	if got := st.Events.Len(); got > 10+1 { // +1 slack for AddNode's event
		t.Fatalf("events not trimmed: %d", got)
	}
}
