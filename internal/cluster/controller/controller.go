// Package controller implements the job lifecycle controller: the
// reconciliation loop that gives QRIO the self-healing Kubernetes
// properties the paper claims (§3.1 — "QRIO can self-restart nodes and
// jobs if they are down"). It requeues jobs stranded on dead nodes,
// retries failed jobs up to a budget, marks stale nodes NotReady, and
// garbage-collects old events.
package controller

import (
	"context"
	"fmt"
	"sort"
	"time"

	"qrio/internal/clock"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
)

// Controller reconciles cluster state.
type Controller struct {
	State *state.Cluster
	// MaxRetries bounds automatic retries of failed jobs (default 2).
	MaxRetries int
	// NodeTimeout marks nodes NotReady when heartbeats stop (default 2s).
	NodeTimeout time.Duration
	// StuckTimeout requeues Scheduled/Running jobs whose node vanished or
	// went NotReady for this long (default 5s).
	StuckTimeout time.Duration
	// MaxEvents caps the event log (default 2048).
	MaxEvents int
	// Retention bounds how long terminal jobs stay resident in the hot
	// store before the sweep moves them (with their event trails) to the
	// archive tier. The zero policy keeps everything resident — the
	// pre-archive behaviour.
	Retention state.RetentionPolicy
	// Interval is the reconcile cadence (default 100ms).
	Interval time.Duration
	// Clock is the controller's time source — injectable for tests and
	// the virtual-time simulator. Nil means the wall clock.
	Clock clock.Clock
}

// New builds a controller with defaults.
func New(st *state.Cluster) *Controller {
	return &Controller{
		State:        st,
		MaxRetries:   2,
		NodeTimeout:  2 * time.Second,
		StuckTimeout: 5 * time.Second,
		MaxEvents:    2048,
		Interval:     100 * time.Millisecond,
		Clock:        clock.Real{},
	}
}

// Run reconciles until the context is cancelled.
func (c *Controller) Run(ctx context.Context) {
	interval := c.Interval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.ReconcileOnce()
		}
	}
}

// ReconcileOnce runs one pass of every reconciliation rule. The archive
// sweep runs after the retry rule so a Failed job with retry budget left
// is resurrected before it can age out (a sweep racing the retry anyway
// resolves safely: the conditional delete loses to any phase change).
func (c *Controller) ReconcileOnce() {
	now := c.clock()
	c.markStaleNodes(now)
	c.requeueStrandedJobs(now)
	c.retryFailedJobs()
	c.State.ArchiveTerminal(now, c.Retention)
	c.gcEvents()
}

func (c *Controller) clock() time.Time { return clock.Now(c.Clock) }

// markStaleNodes flips nodes whose heartbeat stopped to NotReady.
func (c *Controller) markStaleNodes(now time.Time) {
	timeout := c.NodeTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	stale := c.State.Nodes.ListFunc(func(n api.Node) bool {
		return n.Status.Phase == api.NodeReady &&
			!n.Status.LastHeartbeat.IsZero() &&
			now.Sub(n.Status.LastHeartbeat) > timeout
	})
	for _, n := range stale {
		name := n.Name
		c.State.Nodes.Update(name, func(n api.Node) (api.Node, error) {
			n.Status.Phase = api.NodeNotReady
			return n, nil
		})
		c.State.RecordEvent("Node", name, "HeartbeatLost", "marking node NotReady")
	}
}

// requeueStrandedJobs resets Scheduled/Running jobs whose node is gone or
// NotReady back to Pending so the scheduler can place them elsewhere.
func (c *Controller) requeueStrandedJobs(now time.Time) {
	stuck := c.StuckTimeout
	if stuck <= 0 {
		stuck = 5 * time.Second
	}
	assigned := c.State.Jobs.ListFunc(func(j api.QuantumJob) bool {
		return j.Status.Phase == api.JobScheduled || j.Status.Phase == api.JobRunning
	})
	for _, j := range assigned {
		nodeName := j.Status.Node
		node, _, err := c.State.Nodes.Get(nodeName)
		healthy := err == nil && node.Status.Phase == api.NodeReady
		if healthy {
			continue
		}
		// Grace period: the node may just be flapping.
		ref := j.CreatedAt
		if j.Status.StartedAt != nil {
			ref = *j.Status.StartedAt
		}
		if now.Sub(ref) < stuck {
			continue
		}
		jobName := j.Name
		cancelled := false
		c.State.Jobs.Update(jobName, func(j api.QuantumJob) (api.QuantumJob, error) {
			if j.Status.Phase != api.JobScheduled && j.Status.Phase != api.JobRunning {
				return j, fmt.Errorf("controller: phase changed")
			}
			if j.Status.CancelRequested {
				// The kubelet that would abort this container is gone;
				// finalise the cancellation instead of resurrecting the job.
				cancelled = true
				t := now
				j.Status.Phase = api.JobCancelled
				j.Status.Node = ""
				j.Status.FinishedAt = &t
				j.Status.Message = fmt.Sprintf("cancelled; node %s unavailable", nodeName)
				return j, nil
			}
			j.Status.Phase = api.JobPending
			j.Status.Node = ""
			j.Status.Message = fmt.Sprintf("requeued: node %s unavailable", nodeName)
			return j, nil
		})
		if err == nil {
			// The node is typically mid-deregistration here; a failed
			// release is expected but must still be latched, not dropped.
			if rerr := c.State.ReleaseNode(nodeName, jobName); rerr != nil {
				c.State.LatchReleaseFailure(nodeName, jobName, rerr)
			}
		}
		if cancelled {
			c.State.RecordEvent("Job", jobName, "Cancelled",
				fmt.Sprintf("node %s unavailable; cancellation finalised by the controller", nodeName))
			continue
		}
		c.State.RecordEvent("Job", jobName, "Requeued",
			fmt.Sprintf("node %s unavailable; job returned to the queue", nodeName))
	}
}

// retryFailedJobs sends failed jobs back to Pending while retry budget
// remains.
func (c *Controller) retryFailedJobs() {
	max := c.MaxRetries
	if max < 0 {
		max = 0
	}
	failed := c.State.Jobs.ListFunc(func(j api.QuantumJob) bool {
		return j.Status.Phase == api.JobFailed && j.Status.Attempts <= max
	})
	for _, j := range failed {
		jobName := j.Name
		attempts := j.Status.Attempts
		c.State.Jobs.Update(jobName, func(j api.QuantumJob) (api.QuantumJob, error) {
			if j.Status.Phase != api.JobFailed {
				return j, fmt.Errorf("controller: phase changed")
			}
			j.Status.Phase = api.JobPending
			j.Status.Node = ""
			return j, nil
		})
		c.State.RecordEvent("Job", jobName, "Retrying",
			fmt.Sprintf("attempt %d of %d", attempts+1, max+1))
	}
}

// gcEvents trims the event log to MaxEvents, dropping the oldest.
func (c *Controller) gcEvents() {
	cap := c.MaxEvents
	if cap <= 0 {
		cap = 2048
	}
	// Len is a cheap shard-count sum; the full List (one deep copy of the
	// event log) only happens on the rare passes that actually trim.
	if c.State.Events.Len() <= cap {
		return
	}
	events := c.State.Events.List()
	if len(events) <= cap {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	for _, e := range events[:len(events)-cap] {
		c.State.Events.Delete(e.Name)
	}
}
