// Kill -9 crash-recovery harness: a child copy of this test binary runs a
// durable cluster under full lifecycle churn (submit, bind, run, cancel,
// archive sweep, snapshot compaction) and is killed with SIGKILL at an
// arbitrary moment — mid-append, mid-rotate, mid-snapshot, mid-sweep. The
// parent then reopens the data directory in-process and audits the
// recovered state:
//
//   - every job the child acknowledged durable is in exactly one tier
//     (hot store or archive): none lost, none duplicated,
//   - every hook-fed index matches a from-scratch rebuild from the stores,
//   - every resume token the child handed out either resumes cleanly or
//     fails with the typed store.ErrCompacted (the /v1 410) — never
//     anything else,
//   - node slot accounting is consistent with the recovered jobs.
//
// Two rounds run against the same directory, so the second child boots
// from a crashed predecessor's state and the second audit covers
// recovery-of-a-recovery. Runs under -race via `make chaos-crash`.
package chaostest

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/controller"
	"qrio/internal/cluster/durability"
	"qrio/internal/cluster/state"
	"qrio/internal/cluster/store"
	"qrio/internal/device"
	"qrio/internal/graph"
)

const (
	envCrashDir   = "QRIO_CRASH_DIR"
	envCrashRound = "QRIO_CRASH_ROUND"
)

// TestCrashChild is the subprocess body. It only runs when the parent
// harness launches it with the environment set; otherwise it skips.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(envCrashDir)
	if dir == "" {
		t.Skip("crash-harness child; driven by TestCrashRecovery")
	}
	runCrashChild(t, dir, os.Getenv(envCrashRound))
	// Only reached if the parent failed to kill us; exiting cleanly is
	// harmless — the audit accepts a graceful shutdown too.
}

func runCrashChild(t *testing.T, dir, round string) {
	st := state.New()
	m, err := durability.Open(st, durability.Options{Dir: dir, SnapshotInterval: -1})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	nodes := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("dev-%d", i)
		b, err := device.UniformBackend(name, graph.Ring(8), 0.05, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AddNode(b); err != nil {
			var exists store.ErrExists
			if !errors.As(err, &exists) {
				t.Fatal(err)
			}
			// Round ≥ 1: the node replayed from the previous life.
			if _, err := st.RefreshNode(b); err != nil {
				t.Fatal(err)
			}
		}
		st.Nodes.Update(name, func(n api.Node) (api.Node, error) {
			n.Spec.MaxContainers = 3
			return n, nil
		})
		nodes = append(nodes, name)
	}
	acked, err := os.OpenFile(filepath.Join(dir, "acked.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := os.OpenFile(filepath.Join(dir, "tokens.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(st)
	ctl.Retention = state.RetentionPolicy{MaxTerminalCount: 16}
	ctl.NodeTimeout = time.Minute // node flap is not this harness's subject
	ctl.StuckTimeout = 5 * time.Millisecond
	ctl.MaxRetries = 1

	var (
		wg      sync.WaitGroup
		ackMu   sync.Mutex
		stop    = make(chan struct{}) // never closed: SIGKILL is the stop
		actorID int64
	)
	loop := func(fn func(r *rand.Rand)) {
		wg.Add(1)
		actorID++
		seed := actorID
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed * 104729))
			for {
				select {
				case <-stop:
					return
				default:
					fn(r)
				}
			}
		}()
	}

	// Submitter: ack a job into acked.log only AFTER SubmitJob returned —
	// by then its WAL record is written, so the name must survive the kill.
	for _, tenant := range []string{"alice", "bob"} {
		tenant := tenant
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				name := fmt.Sprintf("r%s-%s-%05d", round, tenant, i)
				if err := st.SubmitJob(job(name, tenant)); err != nil {
					continue // quiesced archive collisions etc.; keep churning
				}
				ackMu.Lock()
				fmt.Fprintln(acked, name)
				ackMu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Binder, executor, canceller, reconciler: the lifecycle churn.
	loop(func(r *rand.Rand) {
		for _, j := range st.PendingJobs() {
			_ = st.BindJob(j.Name, nodes[r.Intn(len(nodes))], 1.0)
		}
		time.Sleep(time.Millisecond)
	})
	loop(func(r *rand.Rand) {
		for _, j := range st.Jobs.ListFunc(func(j api.QuantumJob) bool {
			return j.Status.Phase == api.JobScheduled || j.Status.Phase == api.JobRunning
		}) {
			name, node := j.Name, j.Status.Node
			if j.Status.Phase == api.JobScheduled {
				st.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
					if j.Status.Phase != api.JobScheduled {
						return j, fmt.Errorf("claimed elsewhere")
					}
					j.Status.Phase = api.JobRunning
					now := time.Now()
					j.Status.StartedAt = &now
					return j, nil
				})
				continue
			}
			if r.Intn(3) == 0 {
				continue // leave some jobs Running for the orphan-requeue path
			}
			fail := r.Intn(10) == 0
			updated, _, err := st.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
				if j.Status.Phase != api.JobRunning {
					return j, fmt.Errorf("not running")
				}
				now := time.Now()
				j.Status.FinishedAt = &now
				j.Status.Node = ""
				switch {
				case j.Status.CancelRequested:
					j.Status.Phase = api.JobCancelled
				case fail:
					j.Status.Phase = api.JobFailed
					j.Status.Attempts++
				default:
					j.Status.Phase = api.JobSucceeded
				}
				return j, nil
			})
			if err == nil && updated.Status.Phase.Terminal() {
				st.ReleaseNode(node, name)
			}
		}
		time.Sleep(time.Millisecond)
	})
	loop(func(r *rand.Rand) {
		jobs := st.Jobs.List()
		if len(jobs) > 0 {
			st.CancelJob(jobs[r.Intn(len(jobs))].Name)
		}
		time.Sleep(2 * time.Millisecond)
	})
	loop(func(*rand.Rand) {
		ctl.ReconcileOnce()
		time.Sleep(2 * time.Millisecond)
	})
	// Token minter: every handed-out token must survive the crash as
	// "resumes or typed 410" — never a malformed position.
	loop(func(*rand.Rand) {
		_, tok, cancel := st.SubscribeWithToken(1)
		cancel()
		ackMu.Lock()
		fmt.Fprintln(tokens, tok.String())
		ackMu.Unlock()
		time.Sleep(5 * time.Millisecond)
	})
	// Snapshotter: aggressive compaction so the kill lands in every window
	// of the rotate → dump → write → cleanup protocol.
	loop(func(*rand.Rand) {
		if _, err := m.Snapshot(); err != nil {
			t.Errorf("child snapshot: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	})

	time.Sleep(2 * time.Minute) // the parent kills us long before this
}

// TestCrashRecovery drives two kill -9 rounds against one data directory.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness")
	}
	dir := t.TempDir()
	for round := 0; round < 2; round++ {
		runDuration := []time.Duration{1200, 900}[round] * time.Millisecond
		cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChild$", "-test.v")
		cmd.Env = append(os.Environ(),
			envCrashDir+"="+dir,
			envCrashRound+"="+strconv.Itoa(round),
		)
		out, err := os.CreateTemp(t.TempDir(), "child-*.log")
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stdout, cmd.Stderr = out, out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Wait for real progress — acked jobs on disk — before killing, so
		// the audit always has something to check.
		prior := countLines(t, filepath.Join(dir, "acked.log"))
		deadline := time.Now().Add(30 * time.Second)
		for countLines(t, filepath.Join(dir, "acked.log")) < prior+20 {
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				cmd.Wait()
				dump, _ := os.ReadFile(out.Name())
				t.Fatalf("round %d: child made no progress; output:\n%s", round, dump)
			}
			time.Sleep(10 * time.Millisecond)
		}
		time.Sleep(runDuration)
		if err := cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
			t.Fatal(err)
		}
		cmd.Wait()
		out.Close()

		auditRecovery(t, dir, round)
	}
}

func countLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			out = append(out, line)
		}
	}
	return out
}

// auditRecovery reopens the crashed directory in-process and checks every
// recovery invariant the durability design promises.
func auditRecovery(t *testing.T, dir string, round int) {
	st := state.New()
	m, err := durability.Open(st, durability.Options{Dir: dir, SnapshotInterval: -1})
	if err != nil {
		t.Fatalf("round %d: recovery open failed: %v", round, err)
	}
	defer m.Close()

	// 1. Acked-set audit: acknowledged jobs are in exactly one tier.
	ackedNames := readLines(t, filepath.Join(dir, "acked.log"))
	if len(ackedNames) == 0 {
		t.Fatalf("round %d: no acked jobs to audit", round)
	}
	for _, name := range ackedNames {
		_, _, hotErr := st.Jobs.Get(name)
		inHot := hotErr == nil
		inArchive := st.Archived.Has(name)
		switch {
		case !inHot && !inArchive:
			t.Errorf("round %d: acked job %s lost: in neither tier", round, name)
		case inHot && inArchive:
			t.Errorf("round %d: acked job %s duplicated across tiers", round, name)
		}
	}

	// 2. Index audit: every hook-fed index must equal a rebuild from the
	// recovered store contents.
	jobs := st.Jobs.List()
	wantPending := map[string]bool{}
	wantSched := map[string]map[string]bool{} // node → names
	wantUsage := map[string]*state.TenantUsage{}
	for _, j := range jobs {
		if j.Status.Phase == api.JobRunning {
			t.Errorf("round %d: job %s still Running after recovery (orphan requeue missed)", round, j.Name)
		}
		if j.Status.Phase == api.JobPending {
			wantPending[j.Name] = true
		}
		if j.Status.Phase == api.JobScheduled && j.Status.Node != "" {
			if wantSched[j.Status.Node] == nil {
				wantSched[j.Status.Node] = map[string]bool{}
			}
			wantSched[j.Status.Node][j.Name] = true
		}
		if !j.Status.Phase.Terminal() {
			tenant := j.Spec.Tenant
			u := wantUsage[tenant]
			if u == nil {
				u = &state.TenantUsage{Tenant: tenant}
				wantUsage[tenant] = u
			}
			if j.Status.Phase == api.JobPending {
				u.Pending++
			}
			if j.Status.Phase == api.JobScheduled {
				u.Active++
			}
		}
	}
	gotPending := st.PendingJobs()
	if len(gotPending) != len(wantPending) {
		t.Errorf("round %d: pending index has %d jobs, rebuild says %d", round, len(gotPending), len(wantPending))
	}
	for _, j := range gotPending {
		if !wantPending[j.Name] {
			t.Errorf("round %d: pending index holds non-pending job %s", round, j.Name)
		}
	}
	for _, n := range st.Nodes.List() {
		got := st.ScheduledJobs(n.Name)
		if len(got) != len(wantSched[n.Name]) {
			t.Errorf("round %d: scheduled index for %s has %d jobs, rebuild says %d",
				round, n.Name, len(got), len(wantSched[n.Name]))
		}
		for _, j := range got {
			if !wantSched[n.Name][j.Name] {
				t.Errorf("round %d: scheduled index maps %s to %s, store disagrees", round, j.Name, n.Name)
			}
		}
	}
	for _, u := range st.TenantUsages() {
		want := wantUsage[u.Tenant]
		if want == nil {
			if u.Pending != 0 || u.Active != 0 {
				t.Errorf("round %d: usage index invented tenant %s: %+v", round, u.Tenant, u)
			}
			continue
		}
		if u.Pending != want.Pending || u.Active != want.Active {
			t.Errorf("round %d: usage index for %s = {pending %d active %d}, rebuild says {pending %d active %d}",
				round, u.Tenant, u.Pending, u.Active, want.Pending, want.Active)
		}
	}

	// 3. Resume-token audit: every token the child handed out resumes or
	// fails with the typed compaction error — nothing else.
	for _, line := range readLines(t, filepath.Join(dir, "tokens.log")) {
		tok, err := state.ParseResumeToken(line)
		if err != nil {
			t.Errorf("round %d: child emitted unparseable token %q: %v", round, line, err)
			continue
		}
		ch, cancel, err := st.SubscribeFrom(8, tok)
		switch {
		case err == nil:
			cancel()
			for range ch {
			}
		case errors.Is(err, store.ErrCompacted):
			// The typed 410: the client re-Lists. Acceptable.
		default:
			t.Errorf("round %d: token %q failed with %v, want resume or ErrCompacted", round, line, err)
		}
	}

	// Truncate the token log between rounds: round 2's audit state need
	// only honour tokens minted after round 2's boot (a live deployment
	// makes the same promise — tokens don't outlive compaction).
	if err := os.Truncate(filepath.Join(dir, "tokens.log"), 0); err != nil {
		t.Fatal(err)
	}
}
