// Concurrent-bind storm: K scheduler replicas race one pending queue
// with optimistic (version-conditional) binds while executors drain the
// fleet and a retention sweeper archives terminal jobs out from under
// them. The invariants under fire:
//
//   - every job is bound exactly once — K racing replicas never double
//     place, and the winners sum to the job count,
//   - every bind attempt resolves to exactly one of win / typed
//     conflict / capacity error, so the replicas' counters are a
//     complete account of the race,
//   - node slot and CPU/memory accounting drains to zero after the
//     storm — including releases that land after the job was archived
//     (the release-after-archival leak this PR fixes).
//
// Runs under -race via `make chaos-replicas`.
package chaostest

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/device"
	"qrio/internal/graph"
)

// stormJob carries real resource demand so the accounting-drain check is
// about leases, not zeros.
func stormJob(name string) api.QuantumJob {
	j := job(name, "storm")
	j.Spec.Resources = api.ResourceRequirements{CPUMillis: 100, MemoryMB: 64}
	return j
}

// stormFleet builds a small fleet with multi-container nodes.
func stormFleet(t *testing.T, st *state.Cluster, nodes, slots int) []string {
	t.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("storm-%d", i)
		b, err := device.UniformBackend(names[i], graph.Ring(8), 0.05, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AddNode(b); err != nil {
			t.Fatal(err)
		}
		st.Nodes.Update(names[i], func(n api.Node) (api.Node, error) {
			n.Spec.MaxContainers = slots
			return n, nil
		})
	}
	return names
}

// replicaTally is one racing replica's account of its bind attempts.
type replicaTally struct {
	attempts, wins, conflicts, capacity atomic.Uint64
}

// TestConcurrentBindStorm is the K-replica race.
func TestConcurrentBindStorm(t *testing.T) {
	st := state.New()
	nodes := stormFleet(t, st, 4, 3)

	const replicas = 6
	total := 240
	if testing.Short() {
		total = 60
	}

	// Prologue: a deterministic single-job race. All K replicas observe
	// the same version and bind concurrently from a barrier — the CAS
	// must admit exactly one winner and type every loss as a conflict.
	if err := st.SubmitJob(stormJob("contended")); err != nil {
		t.Fatal(err)
	}
	versioned := st.PendingJobsVersioned(0)
	if len(versioned) != 1 {
		t.Fatalf("pending = %d, want the 1 contended job", len(versioned))
	}
	v := versioned[0].Version
	var barrier, raced sync.WaitGroup
	var wins, conflicts atomic.Int32
	barrier.Add(1)
	for i := 0; i < replicas; i++ {
		raced.Add(1)
		node := nodes[i%len(nodes)]
		go func() {
			defer raced.Done()
			barrier.Wait()
			switch err := st.BindJobAt("contended", node, 1.0, v); {
			case err == nil:
				wins.Add(1)
			case state.IsConflict(err):
				conflicts.Add(1)
			default:
				t.Errorf("contended bind: unexpected error class %v", err)
			}
		}()
	}
	barrier.Done()
	raced.Wait()
	if wins.Load() != 1 || conflicts.Load() != replicas-1 {
		t.Fatalf("contended race: %d wins / %d conflicts, want 1 / %d",
			wins.Load(), conflicts.Load(), replicas-1)
	}

	// The storm proper: a submitter feeds the queue while K replicas race
	// versioned snapshots, executors run and release, and a sweeper
	// archives terminal jobs mid-flight (so some releases take the
	// archive-tier fallthrough).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bounds sync.Map // job name → *atomic.Int32 bind-win count

	winCounter := func(name string) *atomic.Int32 {
		c, _ := bounds.LoadOrStore(name, new(atomic.Int32))
		return c.(*atomic.Int32)
	}

	wg.Add(1)
	go func() { // submitter
		defer wg.Done()
		for i := 0; i < total; i++ {
			name := fmt.Sprintf("storm-%04d", i)
			if err := st.SubmitJob(stormJob(name)); err != nil {
				t.Errorf("submit %s: %v", name, err)
				return
			}
			if i%16 == 15 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	tallies := make([]*replicaTally, replicas)
	for i := range tallies {
		tallies[i] = &replicaTally{}
		wg.Add(1)
		go func(tally *replicaTally, seed int64) { // racing replica
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range st.PendingJobsVersioned(0) {
					node := nodes[r.Intn(len(nodes))]
					tally.attempts.Add(1)
					switch err := st.BindJobAt(p.Job.Name, node, 1.0, p.Version); {
					case err == nil:
						tally.wins.Add(1)
						winCounter(p.Job.Name).Add(1)
					case state.IsConflict(err):
						tally.conflicts.Add(1)
					default:
						// Node out of slots/CPU, or the phase moved between
						// snapshot and CAS — either way not a double bind.
						tally.capacity.Add(1)
					}
				}
				time.Sleep(time.Duration(r.Intn(500)) * time.Microsecond)
			}
		}(tallies[i], int64(i+1)*104729)
	}

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { // executor: Scheduled → Running → Succeeded, release
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				claimed := st.Jobs.ListFunc(func(j api.QuantumJob) bool {
					return j.Status.Phase == api.JobScheduled
				})
				for _, j := range claimed {
					name, node := j.Name, j.Status.Node
					_, _, err := st.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
						if j.Status.Phase != api.JobScheduled {
							return j, fmt.Errorf("claimed elsewhere")
						}
						now := time.Now()
						j.Status.Phase = api.JobSucceeded
						j.Status.StartedAt, j.Status.FinishedAt = &now, &now
						j.Status.Node = ""
						return j, nil
					})
					if err != nil {
						continue
					}
					if rerr := st.ReleaseNode(node, name); rerr != nil {
						t.Errorf("release %s from %s: %v", name, node, rerr)
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	wg.Add(1)
	go func() { // sweeper: archive terminal jobs while releases race it
		defer wg.Done()
		policy := state.RetentionPolicy{MaxTerminalCount: 20}
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.ArchiveTerminal(time.Now(), policy)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Quiesce: every storm job terminal (resident or archived).
	deadline := time.Now().Add(60 * time.Second)
	for {
		done := 0
		for i := 0; i < total; i++ {
			name := fmt.Sprintf("storm-%04d", i)
			if st.Archived.Has(name) {
				done++
				continue
			}
			if j, _, err := st.Jobs.Get(name); err == nil && j.Status.Phase.Terminal() {
				done++
			}
		}
		if done == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("storm did not quiesce: %d of %d jobs terminal", done, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Exactly-once binds: per job and in aggregate.
	var aggWins, aggAttempts, aggConflicts, aggCapacity uint64
	for i, tally := range tallies {
		w, a := tally.wins.Load(), tally.attempts.Load()
		c, k := tally.conflicts.Load(), tally.capacity.Load()
		aggWins += w
		aggAttempts += a
		aggConflicts += c
		aggCapacity += k
		if w+c+k != a {
			t.Errorf("replica %d counters leak: %d attempts vs %d+%d+%d outcomes", i, a, w, c, k)
		}
	}
	if aggWins != uint64(total) {
		t.Fatalf("aggregate wins = %d, want exactly %d", aggWins, total)
	}
	if aggAttempts != aggWins+aggConflicts+aggCapacity {
		t.Fatalf("counters don't sum: %d attempts vs %d wins + %d conflicts + %d capacity",
			aggAttempts, aggWins, aggConflicts, aggCapacity)
	}
	bounds.Range(func(k, v any) bool {
		if n := v.(*atomic.Int32).Load(); n != 1 {
			t.Errorf("job %s bound %d times", k.(string), n)
		}
		return true
	})

	// Accounting drains to zero even though some releases landed after
	// their job was archived.
	for _, name := range nodes {
		n, _, err := st.Nodes.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Status.RunningJobs) != 0 || n.Status.CPUMillisInUse != 0 || n.Status.MemoryMBInUse != 0 {
			t.Errorf("node %s leaked accounting: jobs=%v cpu=%dm mem=%dMB",
				name, n.Status.RunningJobs, n.Status.CPUMillisInUse, n.Status.MemoryMBInUse)
		}
	}
	if pending := st.PendingJobs(); len(pending) != 0 {
		t.Errorf("pending index not drained: %d entries", len(pending))
	}
}
