// Fault-storm harness: a full orchestrator (core.New — scheduler,
// controller, kubelets, durability, /v1 gateway over real HTTP) is
// flooded with submissions while its dependency edges fail on purpose
// through the internal/faults registry:
//
//   - the Meta-Server scorer dies mid-flood (meta.score) — the circuit
//     breaker must open, scheduling must continue on degraded scores with
//     one SchedulingDegraded event, and after the outage the breaker must
//     probe closed again on virtual time;
//   - the client's network flaps (httpx.roundtrip) — the retry policy
//     must absorb it;
//   - WAL appends and archive spill writes fail (wal.append,
//     archive.spill) — the durability layer must latch and surface both
//     without taking the cluster down;
//   - a flooding tenant hits its token-bucket rate limit — held to the
//     bucket, with a correct Retry-After;
//   - the storm ends in a SIGTERM-style drain — no acked job may be
//     lost, nothing may stay parked in Scheduled, and the final snapshot
//     must be clean.
//
// Runs under -race via `make chaos-faults`.
package chaostest

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/durability"
	"qrio/internal/cluster/state"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/faults"
	"qrio/internal/gateway"
	"qrio/internal/graph"
	"qrio/internal/httpx"
	"qrio/internal/resilience"
)

// lockedClock is a mutex-protected virtual clock (clock.Clock requires a
// concurrency-safe Now). The breaker runs its outage cool-down on it, so
// "30 seconds of open circuit" costs the test no wall time.
type lockedClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *lockedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *lockedClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// storm owns the deployment under test.
type storm struct {
	t      *testing.T
	q      *core.QRIO
	cl     *client.Client
	reg    *faults.Registry
	vclock *lockedClock
	acked  sync.Map // job name → struct{} — every submission the gateway 200'd
}

func newStorm(t *testing.T) *storm {
	t.Helper()
	var fleet []*device.Backend
	for i := 0; i < 4; i++ {
		b, err := device.UniformBackend(fmt.Sprintf("dev-%d", i), graph.Ring(8), 0.05, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, b)
	}
	s := &storm{
		t:      t,
		reg:    faults.NewRegistry(0xC0FFEE),
		vclock: &lockedClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)},
	}
	q, err := core.New(core.Config{
		Backends:        fleet,
		Concurrency:     4,
		NodeConcurrency: 2,
		KubeletSeed:     1,
		TenantRateLimits: api.TenantRateLimitPolicy{
			Tenants: map[string]api.TenantRateLimit{
				"flood": {SubmitPerSecond: 2, Burst: 2},
			},
		},
		Faults: s.reg,
		// The scorer breaker alone runs on virtual time; the rest of the
		// cluster (heartbeats, stuck detection, retention) stays on the wall
		// clock so the lifecycle machinery is exercised as deployed.
		Breaker: &resilience.Breaker{
			FailureThreshold: 3,
			OpenTimeout:      30 * time.Second,
			HalfOpenProbes:   1,
			Clock:            s.vclock,
		},
		Retention:  state.RetentionPolicy{MaxTerminalCount: 20},
		Durability: durability.Options{Dir: t.TempDir(), Fsync: false, SnapshotInterval: -1, Faults: s.reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.q = q
	q.Start()
	t.Cleanup(func() { q.Close() })
	srv := httptest.NewServer(gateway.New(q).Handler())
	t.Cleanup(srv.Close)
	s.cl = client.New(srv.URL)
	// Route the client through the fault registry so httpx.roundtrip storms
	// hit it, and opt in to POST retries (submissions are name-deduplicated
	// server-side) so the flapping-network phase must be absorbed by the
	// retry policy, not by test-side resubmission.
	s.cl.HTTP = httpx.NewClient(0, s.reg)
	s.cl.Retry.RetryNonIdempotent = true
	s.cl.Retry.BaseDelay = time.Millisecond
	s.cl.Retry.MaxDelay = 10 * time.Millisecond
	s.cl.Retry.MaxAttempts = 5
	return s
}

// submit pushes one job through the gateway and records the ack. A
// conflict counts as acked: it means a retried POST's first attempt
// landed.
func (s *storm) submit(name, tenant string) error {
	_, err := s.cl.Submit(context.Background(), client.SubmitRequest{
		JobName: name, Tenant: tenant, QASM: qasmSrc, Shots: 64,
		Strategy: api.StrategyFidelity, TargetFidelity: 1,
	})
	if err != nil && !client.IsConflict(err) {
		return err
	}
	s.acked.Store(name, struct{}{})
	return nil
}

// mustSubmit fails the test on a rejected submission.
func (s *storm) mustSubmit(name, tenant string) {
	s.t.Helper()
	if err := s.submit(name, tenant); err != nil {
		s.t.Fatalf("submit %s: %v", name, err)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func (s *storm) waitFor(what string, timeout time.Duration, cond func() bool) {
	s.t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			s.t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// settled reports whether every acked job is terminal — resident or
// archived.
func (s *storm) settled() bool {
	done := true
	s.acked.Range(func(k, _ any) bool {
		name := k.(string)
		if s.q.State.Archived.Has(name) {
			return true
		}
		j, _, err := s.q.State.Jobs.Get(name)
		if err != nil || !j.Status.Phase.Terminal() {
			done = false
			return false
		}
		return true
	})
	return done
}

// TestFaultStorm is the dependency-failure proof: every resilience layer
// added for outages — retry, breaker, degraded scoring, rate limit,
// WAL/spill latching, drain — exercised against one live orchestrator.
func TestFaultStorm(t *testing.T) {
	s := newStorm(t)
	br := s.q.ScorerBreaker

	// Phase 1 — warm-up: healthy traffic populates the score cache the
	// degraded path will later serve from.
	for i := 0; i < 8; i++ {
		s.mustSubmit(fmt.Sprintf("warm-%02d", i), "alice")
	}
	s.waitFor("warm-up jobs to finish", 30*time.Second, s.settled)
	if got := br.State(); got != resilience.Closed {
		t.Fatalf("breaker %v after healthy warm-up, want closed", got)
	}

	// Phase 2 — flapping network: 30% of client round trips fail at the
	// transport while a burst of submissions flows. The retry policy must
	// absorb every flap (5 attempts vs p=0.3 ≈ 2 expected full failures per
	// million submissions).
	s.reg.Enable(faults.PointHTTPRoundTrip, faults.Spec{Probability: 0.3})
	for i := 0; i < 20; i++ {
		s.mustSubmit(fmt.Sprintf("flap-%02d", i), "bob")
	}
	s.reg.Disable(faults.PointHTTPRoundTrip)
	if fired := s.reg.Fired(faults.PointHTTPRoundTrip); fired == 0 {
		t.Fatal("network flap phase injected no faults — the storm is not reaching the transport")
	}

	// Phase 3 — scorer outage mid-flood: every Meta-Server scoring call
	// fails. The breaker must open, binds must continue on degraded scores,
	// and exactly one SchedulingDegraded event must be recorded.
	s.reg.Enable(faults.PointMetaScore, faults.Spec{})
	for i := 0; i < 24; i++ {
		s.mustSubmit(fmt.Sprintf("outage-%02d", i), "alice")
	}
	s.waitFor("breaker to open", 20*time.Second, func() bool { return br.State() == resilience.Open })
	s.waitFor("degraded binds to finish the flood", 60*time.Second, s.settled)
	degraded := 0
	for _, e := range s.q.State.EventsAbout("scheduler") {
		if e.Reason == "SchedulingDegraded" {
			degraded++
		}
	}
	if degraded != 1 {
		t.Fatalf("SchedulingDegraded events = %d, want exactly 1 for one outage", degraded)
	}

	// Phase 4 — recovery: the scorer heals, 30 virtual seconds pass, and
	// the next scoring pass probes the half-open circuit closed.
	s.reg.Disable(faults.PointMetaScore)
	s.vclock.Advance(31 * time.Second)
	probe := 0
	s.waitFor("breaker to close after the cool-down", 30*time.Second, func() bool {
		// Scoring only happens while a pending job is being ranked, so keep
		// a trickle of work flowing to carry the probe.
		s.mustSubmit(fmt.Sprintf("probe-%02d", probe), "bob")
		probe++
		time.Sleep(10 * time.Millisecond)
		return br.State() == resilience.Closed
	})
	if br.Opens() != 1 {
		t.Fatalf("breaker open episodes = %d, want 1", br.Opens())
	}

	// Phase 5 — flooding tenant: 12 instant submissions against a
	// 2/s-burst-2 bucket. The bucket admits the burst plus at most the
	// refill over the loop's elapsed time; everything else must be a typed
	// 429 with a usable Retry-After.
	flood := client.New(s.cl.BaseURL) // no POST retry: a 429 must surface, not be paced over
	start := time.Now()
	admitted, limited := 0, 0
	var retryAfter time.Duration
	for i := 0; i < 12; i++ {
		_, err := flood.Submit(context.Background(), client.SubmitRequest{
			JobName: fmt.Sprintf("flood-%02d", i), Tenant: "flood", QASM: qasmSrc, Shots: 64,
			Strategy: api.StrategyFidelity, TargetFidelity: 1,
		})
		if err == nil {
			s.acked.Store(fmt.Sprintf("flood-%02d", i), struct{}{})
			admitted++
			continue
		}
		if !client.IsRateLimited(err) {
			t.Fatalf("flood submission %d: %v, want rate_limited", i, err)
		}
		limited++
		if ra := client.RetryAfter(err); ra > retryAfter {
			retryAfter = ra
		}
	}
	elapsed := time.Since(start)
	budget := 2 + int(elapsed.Seconds()*2) + 1 // burst + refill + rounding slack
	if admitted > budget {
		t.Fatalf("flooding tenant got %d submissions through in %s (budget %d)", admitted, elapsed, budget)
	}
	if limited == 0 {
		t.Fatal("flooding tenant never hit the rate limit")
	}
	// An empty 2/s bucket refills a full token within 500ms, so the HTTP
	// delta-seconds header (ceiling, minimum 1) must say exactly 1s.
	if retryAfter != time.Second {
		t.Fatalf("rate-limit Retry-After = %s, want 1s", retryAfter)
	}

	// Phase 6 — storage faults: a WAL append failure and an archive spill
	// failure must both latch into the durability stats without disturbing
	// the in-memory cluster.
	s.reg.Enable(faults.PointWALAppend, faults.Spec{})
	s.mustSubmit("wal-victim", "alice")
	s.reg.Disable(faults.PointWALAppend)
	if st := s.q.Durability.Stats(); st.WALError == "" {
		t.Fatal("WAL fault did not latch into Stats().WALError")
	} else if !strings.Contains(st.WALError, "injected failure") {
		t.Fatalf("WALError = %q, want the injected failure", st.WALError)
	}
	s.reg.Enable(faults.PointArchiveSpill, faults.Spec{})
	spillFeed := 0
	s.waitFor("spill fault to latch", 30*time.Second, func() bool {
		// Keep terminal jobs flowing so the retention sweep keeps spilling.
		s.mustSubmit(fmt.Sprintf("spill-%02d", spillFeed), "bob")
		spillFeed++
		time.Sleep(5 * time.Millisecond)
		return s.q.Durability.Stats().SpillError != ""
	})
	s.reg.Disable(faults.PointArchiveSpill)

	// Phase 7 — drain: SIGTERM semantics. Intake must answer 503 draining,
	// in-flight work must finish, nothing may stay parked in Scheduled, and
	// the final snapshot must be clean (the rotation clears the latched WAL
	// error).
	s.q.BeginDrain()
	_, err := s.cl.Submit(context.Background(), client.SubmitRequest{
		JobName: "late", Tenant: "alice", QASM: qasmSrc, Shots: 64,
		Strategy: api.StrategyFidelity, TargetFidelity: 1,
	})
	if !client.IsDraining(err) {
		t.Fatalf("submission during drain: %v, want draining", err)
	}
	requeued, err := s.q.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if requeued < 0 {
		t.Fatalf("requeued = %d", requeued)
	}
	if st := s.q.Durability.Stats(); st.WALError != "" {
		t.Fatalf("drain snapshot left a latched WAL error: %s", st.WALError)
	}

	// Invariant: zero acked jobs lost — every 200'd submission is resident
	// or archived, exactly once, and none is parked in Scheduled.
	total := 0
	s.acked.Range(func(k, _ any) bool {
		total++
		name := k.(string)
		j, _, hotErr := s.q.State.Jobs.Get(name)
		inHot := hotErr == nil
		inArchive := s.q.State.Archived.Has(name)
		switch {
		case !inHot && !inArchive:
			t.Errorf("acked job %s lost in the drain: in neither tier", name)
		case inHot && inArchive:
			t.Errorf("acked job %s duplicated across tiers", name)
		case inHot && j.Status.Phase == api.JobScheduled:
			t.Errorf("job %s still Scheduled after drain — unclaimed bind not requeued", name)
		}
		return true
	})
	if total == 0 {
		t.Fatal("storm acked no jobs")
	}

	// Invariant: the drain released every node slot it requeued or
	// finished.
	for i := 0; i < 4; i++ {
		n, _, err := s.q.State.Nodes.Get(fmt.Sprintf("dev-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Status.RunningJobs) != 0 || n.Status.CPUMillisInUse != 0 || n.Status.MemoryMBInUse != 0 {
			t.Errorf("node %s accounting leaked through the drain: %+v", n.Name, n.Status)
		}
	}
	// The faults the storm armed must all have actually fired — a fault
	// point that silently stopped being threaded would pass every assertion
	// above while testing nothing.
	for _, point := range []string{faults.PointHTTPRoundTrip, faults.PointMetaScore,
		faults.PointWALAppend, faults.PointArchiveSpill} {
		if s.reg.Fired(point) == 0 {
			t.Errorf("fault point %s never fired during the storm", point)
		}
	}
}
