// Package chaostest drives the full job lifecycle — submit, bind, run,
// finish, cancel, node death, controller requeue/retry, retention sweep —
// concurrently against one cluster state, then asserts the invariants the
// archive tier must never break:
//
//   - no job is ever lost between the hot store and the archive,
//   - the pending index never references an archived key,
//   - tenant usage returns to zero once the dust settles,
//   - node slot/resource accounting returns to zero.
//
// It runs under -race via `make race` (the cluster tree is in RACE_PKGS),
// which is the point: every actor is a separate goroutine hammering the
// same store shards, hooks and indexes.
package chaostest

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/controller"
	"qrio/internal/cluster/state"
	"qrio/internal/device"
	"qrio/internal/graph"
)

const qasmSrc = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];"

func job(name, tenant string) api.QuantumJob {
	return api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: api.JobSpec{
			Tenant: tenant, QASM: qasmSrc,
			Strategy: api.StrategyFidelity, TargetFidelity: 1,
		},
	}
}

// harness owns the cluster and the shared bookkeeping.
type harness struct {
	t         *testing.T
	st        *state.Cluster
	ctl       *controller.Controller
	policy    state.RetentionPolicy
	nodes     []string
	submitted sync.Map // name → struct{}
	count     atomic.Int64
	stop      chan struct{}
	wg        sync.WaitGroup
}

func newHarness(t *testing.T) *harness {
	st := state.New()
	h := &harness{
		t:      t,
		st:     st,
		policy: state.RetentionPolicy{MaxTerminalCount: 40},
		stop:   make(chan struct{}),
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("dev-%d", i)
		b, err := device.UniformBackend(name, graph.Ring(8), 0.05, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AddNode(b); err != nil {
			t.Fatal(err)
		}
		st.Nodes.Update(name, func(n api.Node) (api.Node, error) {
			n.Spec.MaxContainers = 3
			return n, nil
		})
		h.nodes = append(h.nodes, name)
	}
	h.ctl = controller.New(st)
	h.ctl.Retention = h.policy
	h.ctl.NodeTimeout = 50 * time.Millisecond
	h.ctl.StuckTimeout = 10 * time.Millisecond
	h.ctl.MaxRetries = 1
	return h
}

// loop runs fn until the harness stops.
func (h *harness) loop(fn func(r *rand.Rand)) {
	h.wg.Add(1)
	seed := h.count.Add(1)
	go func() {
		defer h.wg.Done()
		r := rand.New(rand.NewSource(seed * 7919))
		for {
			select {
			case <-h.stop:
				return
			default:
				fn(r)
			}
		}
	}()
}

// submitter admits jobs for one tenant.
func (h *harness) submitter(tenant string, total int) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for i := 0; i < total; i++ {
			name := fmt.Sprintf("%s-%04d", tenant, i)
			if err := h.st.SubmitJob(job(name, tenant)); err != nil {
				h.t.Errorf("submit %s: %v", name, err)
				return
			}
			h.submitted.Store(name, struct{}{})
			if i%8 == 7 {
				time.Sleep(time.Millisecond) // let the fleet breathe
			}
		}
	}()
}

// binder plays the scheduler: pending jobs onto random ready nodes.
func (h *harness) binder(r *rand.Rand) {
	for _, j := range h.st.PendingJobs() {
		node := h.nodes[r.Intn(len(h.nodes))]
		_ = h.st.BindJob(j.Name, node, 1.0) // capacity races are the node's problem
	}
	time.Sleep(time.Millisecond)
}

// executor plays the kubelets: claim Scheduled jobs, run them, finish
// them (mostly success, some failures), honour cancel requests.
func (h *harness) executor(r *rand.Rand) {
	scheduled := h.st.Jobs.ListFunc(func(j api.QuantumJob) bool {
		return j.Status.Phase == api.JobScheduled || j.Status.Phase == api.JobRunning
	})
	for _, j := range scheduled {
		name, node := j.Name, j.Status.Node
		if j.Status.Phase == api.JobScheduled {
			h.st.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
				if j.Status.Phase != api.JobScheduled {
					return j, fmt.Errorf("claimed elsewhere")
				}
				j.Status.Phase = api.JobRunning
				now := time.Now()
				j.Status.StartedAt = &now
				return j, nil
			})
			continue // finish on a later pass, giving cancels a window
		}
		fail := r.Intn(10) == 0
		updated, _, err := h.st.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
			if j.Status.Phase != api.JobRunning {
				return j, fmt.Errorf("not running")
			}
			now := time.Now()
			j.Status.FinishedAt = &now
			j.Status.Node = ""
			switch {
			case j.Status.CancelRequested:
				j.Status.Phase = api.JobCancelled
			case fail:
				j.Status.Phase = api.JobFailed
				j.Status.Attempts++
			default:
				j.Status.Phase = api.JobSucceeded
			}
			return j, nil
		})
		if err == nil && updated.Status.Phase.Terminal() {
			h.st.ReleaseNode(node, name)
		}
	}
	time.Sleep(time.Millisecond)
}

// canceller fires cancels at random submitted jobs; typed conflicts and
// not-founds are the expected outcome for most of them.
func (h *harness) canceller(r *rand.Rand) {
	var names []string
	h.submitted.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return len(names) < 64
	})
	if len(names) == 0 {
		time.Sleep(time.Millisecond)
		return
	}
	h.st.CancelJob(names[r.Intn(len(names))])
	time.Sleep(time.Millisecond)
}

// nodeKiller flaps a random node NotReady and back, exercising the
// controller's requeue path against archival.
func (h *harness) nodeKiller(r *rand.Rand) {
	node := h.nodes[r.Intn(len(h.nodes))]
	h.st.Nodes.Update(node, func(n api.Node) (api.Node, error) {
		n.Status.Phase = api.NodeNotReady
		return n, nil
	})
	time.Sleep(5 * time.Millisecond)
	h.st.Nodes.Update(node, func(n api.Node) (api.Node, error) {
		n.Status.Phase = api.NodeReady
		n.Status.LastHeartbeat = time.Now()
		return n, nil
	})
	time.Sleep(5 * time.Millisecond)
}

// reconciler runs the controller (requeue, retry, archive sweep, GC).
func (h *harness) reconciler(*rand.Rand) {
	h.ctl.ReconcileOnce()
	time.Sleep(time.Millisecond)
}

// invariantChecker continuously cross-checks the pending index against
// the archive while everything churns.
func (h *harness) invariantChecker(*rand.Rand) {
	for _, j := range h.st.PendingJobs() {
		if h.st.Archived.Has(j.Name) {
			h.t.Errorf("pending index references archived key %s", j.Name)
		}
	}
	time.Sleep(time.Millisecond)
}

// TestLifecycleChaos is the harness entry point: N jobs across two
// tenants through every lifecycle path at once, with an aggressive
// retention policy sweeping terminal jobs out from under the actors.
func TestLifecycleChaos(t *testing.T) {
	h := newHarness(t)
	perTenant := 150
	if testing.Short() {
		perTenant = 40
	}
	h.submitter("alice", perTenant)
	h.submitter("bob", perTenant)
	h.loop(h.binder)
	h.loop(h.binder)
	h.loop(h.executor)
	h.loop(h.executor)
	h.loop(h.canceller)
	h.loop(h.nodeKiller)
	h.loop(h.reconciler)
	h.loop(h.invariantChecker)

	// Quiesce: every submitted job must end up terminal — resident or
	// archived — within the deadline.
	deadline := time.Now().Add(60 * time.Second)
	for {
		settled := true
		h.submitted.Range(func(k, _ any) bool {
			name := k.(string)
			if h.st.Archived.Has(name) {
				return true
			}
			j, _, err := h.st.Jobs.Get(name)
			if err != nil || !j.Status.Phase.Terminal() {
				settled = false
				return false
			}
			return true
		})
		done := int64(0)
		h.submitted.Range(func(_, _ any) bool { done++; return true })
		if settled && done == int64(2*perTenant) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster did not quiesce: jobs stuck non-terminal")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(h.stop)
	h.wg.Wait()

	// Final sweep so the resident/archived split is stable, then audit.
	h.st.ArchiveTerminal(time.Now(), h.policy)

	// Invariant: no job lost — and none duplicated — between the tiers.
	total := 0
	h.submitted.Range(func(k, _ any) bool {
		total++
		name := k.(string)
		_, _, hotErr := h.st.Jobs.Get(name)
		inHot := hotErr == nil
		inArchive := h.st.Archived.Has(name)
		switch {
		case !inHot && !inArchive:
			t.Errorf("job %s lost: in neither tier", name)
		case inHot && inArchive:
			t.Errorf("job %s duplicated: in both tiers after quiesce", name)
		}
		return true
	})
	if total != 2*perTenant {
		t.Fatalf("bookkeeping lost submissions: %d of %d", total, 2*perTenant)
	}
	if resident := h.st.TerminalCount(); resident > h.policy.MaxTerminalCount {
		t.Errorf("retention violated: %d terminal jobs resident (cap %d)", resident, h.policy.MaxTerminalCount)
	}

	// Invariant: usage drains to zero for every tenant.
	for _, u := range h.st.TenantUsages() {
		t.Errorf("tenant %s usage not zero after quiesce: %+v", u.Tenant, u)
	}
	if n := h.st.PendingCount(); n != 0 {
		t.Errorf("pending count %d after quiesce", n)
	}

	// Invariant: node accounting fully released.
	for _, name := range h.nodes {
		n, _, err := h.st.Nodes.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Status.RunningJobs) != 0 || n.Status.CPUMillisInUse != 0 || n.Status.MemoryMBInUse != 0 {
			t.Errorf("node %s accounting leaked: %+v", name, n.Status)
		}
	}
}
