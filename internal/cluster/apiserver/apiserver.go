// Package apiserver exposes the cluster state over REST — the QRIO master
// node's API surface that the Master Server, Visualizer and qrioctl talk
// to. All circuit payloads travel as QASM strings inside JSON, so the
// whole control plane is usable without any quantum SDK on the client.
package apiserver

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/device"
	"qrio/internal/httpx"
)

// Server serves the cluster API.
type Server struct {
	State *state.Cluster
}

// New builds an API server over cluster state.
func New(st *state.Cluster) *Server { return &Server{State: st} }

// Handler returns the REST routes:
//
//	GET  /healthz
//	GET  /api/v1/nodes              GET /api/v1/nodes/{name}
//	POST /api/v1/nodes              — register a vendor backend as a node
//	GET  /api/v1/jobs               GET /api/v1/jobs/{name}
//	POST /api/v1/jobs               — direct job submission (prefer the
//	                                  Master Server, which containerises)
//	GET  /api/v1/jobs/{name}/logs   — execution result (Fig. 5)
//	GET  /api/v1/events?about=X
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]any{
			"ok":    true,
			"nodes": s.State.Nodes.Len(),
			"jobs":  s.State.Jobs.Len(),
		})
	})
	mux.HandleFunc("/api/v1/nodes", s.handleNodes)
	mux.HandleFunc("/api/v1/nodes/", s.handleNode)
	mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	mux.HandleFunc("/api/v1/events", s.handleEvents)
	return mux
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		nodes := s.State.Nodes.List()
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
		httpx.WriteJSON(w, http.StatusOK, nodes)
	case http.MethodPost:
		var b device.Backend
		if err := httpx.DecodeJSON(r, &b); err != nil {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
			return
		}
		n, err := s.State.AddNode(&b)
		if err != nil {
			httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
			return
		}
		httpx.WriteJSON(w, http.StatusCreated, n)
	default:
		httpx.MethodNotAllowed(w, r)
	}
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/api/v1/nodes/")
	if name == "" || strings.Contains(name, "/") {
		httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound, fmt.Errorf("unknown path %q", r.URL.Path))
		return
	}
	switch r.Method {
	case http.MethodGet:
		n, _, err := s.State.Nodes.Get(name)
		if err != nil {
			httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, n)
	case http.MethodDelete:
		if err := s.State.Nodes.Delete(name); err != nil {
			httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"deleted": name})
	default:
		httpx.MethodNotAllowed(w, r)
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		jobs := s.State.Jobs.List()
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].Name < jobs[j].Name })
		httpx.WriteJSON(w, http.StatusOK, jobs)
	case http.MethodPost:
		var j api.QuantumJob
		if err := httpx.DecodeJSON(r, &j); err != nil {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
			return
		}
		if err := s.State.SubmitJob(j); err != nil {
			httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
			return
		}
		stored, _, _ := s.State.Jobs.Get(j.Name)
		httpx.WriteJSON(w, http.StatusCreated, stored)
	default:
		httpx.MethodNotAllowed(w, r)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	if name, ok := strings.CutSuffix(rest, "/logs"); ok && name != "" {
		if r.Method != http.MethodGet {
			httpx.MethodNotAllowed(w, r)
			return
		}
		res, ok := s.State.ResultFor(name)
		if !ok {
			httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound,
				fmt.Errorf("no logs for job %q (logs appear once execution finishes)", name))
			return
		}
		httpx.WriteJSON(w, http.StatusOK, res)
		return
	}
	name := rest
	if name == "" || strings.Contains(name, "/") {
		httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound, fmt.Errorf("unknown path %q", r.URL.Path))
		return
	}
	switch r.Method {
	case http.MethodGet:
		j, _, err := s.State.Jobs.Get(name)
		if err != nil {
			httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, j)
	case http.MethodDelete:
		// Deleting a Scheduled/Running job would orphan its node
		// reservation (ReleaseNode can no longer look up the job's
		// resources). Force the cancel path (/v1) first; pending and
		// terminal jobs hold no reservation and delete freely.
		if j, _, err := s.State.Jobs.Get(name); err == nil {
			if p := j.Status.Phase; p == api.JobScheduled || p == api.JobRunning {
				httpx.WriteError(w, http.StatusConflict, httpx.CodeConflict,
					fmt.Errorf("job %s is %s and holds a node reservation; cancel it first", name, p))
				return
			}
		}
		if err := s.State.Jobs.Delete(name); err != nil {
			httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"deleted": name})
	default:
		httpx.MethodNotAllowed(w, r)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpx.MethodNotAllowed(w, r)
		return
	}
	about := r.URL.Query().Get("about")
	var events []api.Event
	if about != "" {
		events = s.State.EventsAbout(about)
	} else {
		events = s.State.Events.List()
		sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	}
	httpx.WriteJSON(w, http.StatusOK, events)
}
