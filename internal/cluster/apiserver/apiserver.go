// Package apiserver exposes the cluster state over REST — the QRIO master
// node's API surface that the Master Server, Visualizer and qrioctl talk
// to. All circuit payloads travel as QASM strings inside JSON, so the
// whole control plane is usable without any quantum SDK on the client.
package apiserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/cluster/store"
	"qrio/internal/device"
)

// Server serves the cluster API.
type Server struct {
	State *state.Cluster
}

// New builds an API server over cluster state.
func New(st *state.Cluster) *Server { return &Server{State: st} }

// Handler returns the REST routes:
//
//	GET  /healthz
//	GET  /api/v1/nodes              GET /api/v1/nodes/{name}
//	POST /api/v1/nodes              — register a vendor backend as a node
//	GET  /api/v1/jobs               GET /api/v1/jobs/{name}
//	POST /api/v1/jobs               — direct job submission (prefer the
//	                                  Master Server, which containerises)
//	GET  /api/v1/jobs/{name}/logs   — execution result (Fig. 5)
//	GET  /api/v1/events?about=X
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":    true,
			"nodes": s.State.Nodes.Len(),
			"jobs":  s.State.Jobs.Len(),
		})
	})
	mux.HandleFunc("/api/v1/nodes", s.handleNodes)
	mux.HandleFunc("/api/v1/nodes/", s.handleNode)
	mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	mux.HandleFunc("/api/v1/events", s.handleEvents)
	return mux
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		nodes := s.State.Nodes.List()
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
		writeJSON(w, http.StatusOK, nodes)
	case http.MethodPost:
		var b device.Backend
		if err := decodeJSON(r, &b); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		n, err := s.State.AddNode(&b)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, n)
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
	}
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/api/v1/nodes/")
	if name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown path %q", r.URL.Path))
		return
	}
	switch r.Method {
	case http.MethodGet:
		n, _, err := s.State.Nodes.Get(name)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, n)
	case http.MethodDelete:
		if err := s.State.Nodes.Delete(name); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		jobs := s.State.Jobs.List()
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].Name < jobs[j].Name })
		writeJSON(w, http.StatusOK, jobs)
	case http.MethodPost:
		var j api.QuantumJob
		if err := decodeJSON(r, &j); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.State.SubmitJob(j); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		stored, _, _ := s.State.Jobs.Get(j.Name)
		writeJSON(w, http.StatusCreated, stored)
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	if name, ok := strings.CutSuffix(rest, "/logs"); ok && name != "" {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
			return
		}
		res, _, err := s.State.Results.Get(name)
		if err != nil {
			writeError(w, http.StatusNotFound,
				fmt.Errorf("no logs for job %q (logs appear once execution finishes)", name))
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	name := rest
	if name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown path %q", r.URL.Path))
		return
	}
	switch r.Method {
	case http.MethodGet:
		j, _, err := s.State.Jobs.Get(name)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, j)
	case http.MethodDelete:
		if err := s.State.Jobs.Delete(name); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
		return
	}
	about := r.URL.Query().Get("about")
	var events []api.Event
	if about != "" {
		events = s.State.EventsAbout(about)
	} else {
		events = s.State.Events.List()
		sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	}
	writeJSON(w, http.StatusOK, events)
}

func statusFor(err error) int {
	var notFound store.ErrNotFound
	var exists store.ErrExists
	switch {
	case errors.As(err, &notFound):
		return http.StatusNotFound
	case errors.As(err, &exists):
		return http.StatusConflict
	default:
		return http.StatusUnprocessableEntity
	}
}

func decodeJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
