package apiserver

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/device"
	"qrio/internal/httpx"
)

// Client is a typed REST client for the cluster API (used by out-of-process
// components). Every method takes a context so callers can deadline or
// cancel individual requests; the embedded client timeout is only a
// backstop.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry paces idempotent calls through transient failures
	// (httpx.DefaultRetry via NewClient; zero value = single attempt).
	Retry httpx.RetryPolicy
}

// NewClient builds a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:  httpx.NewClient(0, nil),
		Retry: httpx.DefaultRetry}
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return httpx.DoJSONRetry(ctx, c.HTTP, c.Retry, method, c.BaseURL+path, in, out,
		func(status int, _, msg string, _ time.Duration) error {
			if msg == "" {
				return fmt.Errorf("apiserver: %s %s: HTTP %d", method, path, status)
			}
			return fmt.Errorf("apiserver: %s %s: %s", method, path, msg)
		})
}

// Healthy pings /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Nodes lists cluster nodes.
func (c *Client) Nodes(ctx context.Context) ([]api.Node, error) {
	var out []api.Node
	err := c.do(ctx, http.MethodGet, "/api/v1/nodes", nil, &out)
	return out, err
}

// Node fetches one node.
func (c *Client) Node(ctx context.Context, name string) (api.Node, error) {
	var out api.Node
	err := c.do(ctx, http.MethodGet, "/api/v1/nodes/"+name, nil, &out)
	return out, err
}

// RegisterNode adds a vendor backend to the cluster.
func (c *Client) RegisterNode(ctx context.Context, b *device.Backend) (api.Node, error) {
	var out api.Node
	err := c.do(ctx, http.MethodPost, "/api/v1/nodes", b, &out)
	return out, err
}

// DeleteNode removes a node.
func (c *Client) DeleteNode(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/nodes/"+name, nil, nil)
}

// Jobs lists jobs.
func (c *Client) Jobs(ctx context.Context) ([]api.QuantumJob, error) {
	var out []api.QuantumJob
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &out)
	return out, err
}

// Job fetches one job.
func (c *Client) Job(ctx context.Context, name string) (api.QuantumJob, error) {
	var out api.QuantumJob
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+name, nil, &out)
	return out, err
}

// SubmitJob posts a raw job object (the Master Server path is preferred).
func (c *Client) SubmitJob(ctx context.Context, j api.QuantumJob) (api.QuantumJob, error) {
	var out api.QuantumJob
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", j, &out)
	return out, err
}

// Logs fetches a finished job's execution result.
func (c *Client) Logs(ctx context.Context, jobName string) (api.Result, error) {
	var out api.Result
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+jobName+"/logs", nil, &out)
	return out, err
}

// Events lists events, optionally filtered by subject.
func (c *Client) Events(ctx context.Context, about string) ([]api.Event, error) {
	path := "/api/v1/events"
	if about != "" {
		path += "?about=" + about
	}
	var out []api.Event
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}
