package apiserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/device"
)

// Client is a typed REST client for the cluster API (used by qrioctl and
// out-of-process components).
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP: &http.Client{Timeout: 120 * time.Second}}
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("apiserver: %s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("apiserver: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// Healthy pings /healthz.
func (c *Client) Healthy() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Nodes lists cluster nodes.
func (c *Client) Nodes() ([]api.Node, error) {
	var out []api.Node
	err := c.do(http.MethodGet, "/api/v1/nodes", nil, &out)
	return out, err
}

// Node fetches one node.
func (c *Client) Node(name string) (api.Node, error) {
	var out api.Node
	err := c.do(http.MethodGet, "/api/v1/nodes/"+name, nil, &out)
	return out, err
}

// RegisterNode adds a vendor backend to the cluster.
func (c *Client) RegisterNode(b *device.Backend) (api.Node, error) {
	var out api.Node
	err := c.do(http.MethodPost, "/api/v1/nodes", b, &out)
	return out, err
}

// DeleteNode removes a node.
func (c *Client) DeleteNode(name string) error {
	return c.do(http.MethodDelete, "/api/v1/nodes/"+name, nil, nil)
}

// Jobs lists jobs.
func (c *Client) Jobs() ([]api.QuantumJob, error) {
	var out []api.QuantumJob
	err := c.do(http.MethodGet, "/api/v1/jobs", nil, &out)
	return out, err
}

// Job fetches one job.
func (c *Client) Job(name string) (api.QuantumJob, error) {
	var out api.QuantumJob
	err := c.do(http.MethodGet, "/api/v1/jobs/"+name, nil, &out)
	return out, err
}

// SubmitJob posts a raw job object (the Master Server path is preferred).
func (c *Client) SubmitJob(j api.QuantumJob) (api.QuantumJob, error) {
	var out api.QuantumJob
	err := c.do(http.MethodPost, "/api/v1/jobs", j, &out)
	return out, err
}

// Logs fetches a finished job's execution result.
func (c *Client) Logs(jobName string) (api.Result, error) {
	var out api.Result
	err := c.do(http.MethodGet, "/api/v1/jobs/"+jobName+"/logs", nil, &out)
	return out, err
}

// Events lists events, optionally filtered by subject.
func (c *Client) Events(about string) ([]api.Event, error) {
	path := "/api/v1/events"
	if about != "" {
		path += "?about=" + about
	}
	var out []api.Event
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}
