package apiserver_test

import (
	"net/http/httptest"
	"testing"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/apiserver"
	"qrio/internal/cluster/state"
	"qrio/internal/device"
	"qrio/internal/graph"
)

func newServer(t *testing.T) (*apiserver.Client, *state.Cluster, func()) {
	t.Helper()
	st := state.New()
	srv := httptest.NewServer(apiserver.New(st).Handler())
	return apiserver.NewClient(srv.URL), st, srv.Close
}

func testBackend(t *testing.T, name string) *device.Backend {
	t.Helper()
	b, err := device.UniformBackend(name, graph.Line(4), 0.1, 0.01, 0.05, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testJob(name string) api.QuantumJob {
	return api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: api.JobSpec{
			QASM:     "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];",
			Strategy: api.StrategyFidelity, TargetFidelity: 0.9,
		},
	}
}

func TestHealthz(t *testing.T) {
	c, _, done := newServer(t)
	defer done()
	if err := c.Healthy(t.Context()); err != nil {
		t.Fatal(err)
	}
}

func TestNodeLifecycleOverHTTP(t *testing.T) {
	c, _, done := newServer(t)
	defer done()
	n, err := c.RegisterNode(t.Context(), testBackend(t, "dev-a"))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "dev-a" || n.Labels[api.LabelQubits] != "4" {
		t.Fatalf("registered node = %+v", n)
	}
	nodes, err := c.Nodes(t.Context())
	if err != nil || len(nodes) != 1 {
		t.Fatalf("Nodes = %v, %v", nodes, err)
	}
	got, err := c.Node(t.Context(), "dev-a")
	if err != nil || got.Name != "dev-a" {
		t.Fatalf("Node = %v, %v", got, err)
	}
	// Duplicate registration conflicts.
	if _, err := c.RegisterNode(t.Context(), testBackend(t, "dev-a")); err == nil {
		t.Fatal("duplicate node accepted over HTTP")
	}
	if err := c.DeleteNode(t.Context(), "dev-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(t.Context(), "dev-a"); err == nil {
		t.Fatal("deleted node still fetchable")
	}
	if err := c.DeleteNode(t.Context(), "dev-a"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	c, st, done := newServer(t)
	defer done()
	if _, err := c.SubmitJob(t.Context(), testJob("j1")); err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Jobs(t.Context())
	if err != nil || len(jobs) != 1 || jobs[0].Status.Phase != api.JobPending {
		t.Fatalf("Jobs = %v, %v", jobs, err)
	}
	// Invalid submissions rejected.
	bad := testJob("j2")
	bad.Spec.Strategy = "nope"
	if _, err := c.SubmitJob(t.Context(), bad); err == nil {
		t.Fatal("invalid job accepted over HTTP")
	}
	// Logs 404 before results exist.
	if _, err := c.Logs(t.Context(), "j1"); err == nil {
		t.Fatal("premature logs")
	}
	st.Results.Create(api.Result{
		ObjectMeta: api.ObjectMeta{Name: "j1"},
		JobName:    "j1", Node: "dev", LogLines: []string{"done"}, Fidelity: 0.9,
	})
	res, err := c.Logs(t.Context(), "j1")
	if err != nil || res.Fidelity != 0.9 {
		t.Fatalf("Logs = %+v, %v", res, err)
	}
}

func TestEventsOverHTTP(t *testing.T) {
	c, st, done := newServer(t)
	defer done()
	st.RecordEvent("Job", "j1", "A", "one")
	st.RecordEvent("Job", "j2", "B", "two")
	all, err := c.Events(t.Context(), "")
	if err != nil || len(all) != 2 {
		t.Fatalf("Events = %v, %v", all, err)
	}
	onlyJ1, err := c.Events(t.Context(), "j1")
	if err != nil || len(onlyJ1) != 1 || onlyJ1[0].Reason != "A" {
		t.Fatalf("filtered events = %v, %v", onlyJ1, err)
	}
}

func TestUnknownPathsAndMethods(t *testing.T) {
	_, st, done := newServer(t)
	defer done()
	srv := httptest.NewServer(apiserver.New(st).Handler())
	defer srv.Close()
	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/api/v1/jobs/", 404},
		{"PATCH", "/api/v1/nodes", 405},
		{"PUT", "/api/v1/jobs", 405},
		{"GET", "/api/v1/nodes/a/b", 404},
	} {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		w := httptest.NewRecorder()
		apiserver.New(st).Handler().ServeHTTP(w, req)
		if w.Code != tc.wantStatus {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, w.Code, tc.wantStatus)
		}
	}
}
