package state

import (
	"errors"
	"sync"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/store"
)

// tenantConfIndex caches the TenantConfigs store for lock-cheap reads on
// the scheduler and admission hot paths. Fed by a store hook, so it can
// never diverge from the store — including after a WAL replay, which
// re-fires the same hooks.
type tenantConfIndex struct {
	mu sync.RWMutex
	m  map[string]api.TenantConfig
	// activeBound counts configs that impose a MaxActive cap, letting the
	// scheduler answer "does any tenant have an active bound?" without a
	// map walk per pass.
	activeBound int
}

func (t *tenantConfIndex) onTenantEvent(ev store.WatchEvent[api.TenantConfig]) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, ok := t.m[ev.Object.Name]; ok && prev.Quota.MaxActive > 0 {
		t.activeBound--
	}
	if ev.Type == store.Deleted {
		delete(t.m, ev.Object.Name)
		return
	}
	t.m[ev.Object.Name] = ev.Object // the hook's private copy; never mutated
	if ev.Object.Quota.MaxActive > 0 {
		t.activeBound++
	}
}

func (t *tenantConfIndex) get(name string) (api.TenantConfig, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cfg, ok := t.m[name]
	return cfg, ok
}

// InvalidTenantConfigError reports a rejected tenant configuration update
// (the /v1 unprocessable case).
type InvalidTenantConfigError struct{ Err error }

func (e *InvalidTenantConfigError) Error() string { return e.Err.Error() }
func (e *InvalidTenantConfigError) Unwrap() error { return e.Err }

// HTTPStatus implements httpx.StatusCoder: a config that fails validation
// maps to 422 with the "invalid" envelope code.
func (e *InvalidTenantConfigError) HTTPStatus() (int, string) { return 422, "invalid" }

// SetTenantConfig validates and upserts a tenant override. Weight and
// quota land in a single store mutation — one watch event, one WAL record
// — so the pair is atomic: a crash or a concurrent reader never observes
// the new weight with the old quota. An override fully replaces the static
// flag-time configuration for that tenant (Weight 0 means the default
// fair-share weight of 1; zero quota fields mean unlimited).
func (c *Cluster) SetTenantConfig(cfg api.TenantConfig) (api.TenantConfig, error) {
	if err := cfg.Validate(); err != nil {
		return api.TenantConfig{}, &InvalidTenantConfigError{Err: err}
	}
	for {
		updated, _, err := c.TenantConfigs.Update(cfg.Name, func(cur api.TenantConfig) (api.TenantConfig, error) {
			cur.Weight = cfg.Weight
			cur.Quota = cfg.Quota
			cur.RateLimit = cfg.RateLimit
			cur.Labels = cfg.Labels
			return cur, nil
		})
		if err == nil {
			return updated, nil
		}
		var notFound store.ErrNotFound
		if !errors.As(err, &notFound) {
			return api.TenantConfig{}, err
		}
		fresh := cfg.DeepCopy()
		fresh.UID = c.NextUID("tenant")
		fresh.CreatedAt = c.now()
		fresh.ResourceVersion = 0
		if _, err := c.TenantConfigs.Create(fresh); err == nil {
			return fresh, nil
		} else {
			var exists store.ErrExists
			if !errors.As(err, &exists) {
				return api.TenantConfig{}, err
			}
		}
		// Lost a create race — loop back to the update path.
	}
}

// TenantConfig returns the live override for a tenant, if one is set.
func (c *Cluster) TenantConfig(name string) (api.TenantConfig, bool) {
	return c.tenantConf.get(name)
}

// TenantConfigList returns every live tenant override.
func (c *Cluster) TenantConfigList() []api.TenantConfig {
	return c.TenantConfigs.List()
}

// QuotaFor resolves the quota governing one tenant: a live TenantConfig
// override wins; otherwise the static flag-time policy applies.
func (c *Cluster) QuotaFor(tenant string) api.TenantQuota {
	if tenant == "" {
		tenant = api.DefaultTenant
	}
	if cfg, ok := c.tenantConf.get(tenant); ok {
		return cfg.Quota
	}
	return c.Quotas.For(tenant)
}

// RateLimitFor resolves the submission rate limit governing one tenant:
// a live TenantConfig override wins; otherwise the static flag-time
// policy applies (the exact QuotaFor resolution, for the arrival bound).
func (c *Cluster) RateLimitFor(tenant string) api.TenantRateLimit {
	if tenant == "" {
		tenant = api.DefaultTenant
	}
	if cfg, ok := c.tenantConf.get(tenant); ok {
		return cfg.RateLimit
	}
	return c.RateLimits.For(tenant)
}

// TenantWeight reports a tenant's live weight override. ok is false when
// no override exists — the caller falls back to its static configuration.
func (c *Cluster) TenantWeight(tenant string) (int, bool) {
	cfg, ok := c.tenantConf.get(tenant)
	if !ok {
		return 0, false
	}
	if cfg.Weight <= 0 {
		return 1, true
	}
	return cfg.Weight, true
}

// HasActiveQuotaOverride reports whether any live override imposes a
// MaxActive cap, so the scheduler knows to consult quotas during a pass
// even when the static policy is unbounded.
func (c *Cluster) HasActiveQuotaOverride() bool {
	c.tenantConf.mu.RLock()
	defer c.tenantConf.mu.RUnlock()
	return c.tenantConf.activeBound > 0
}
