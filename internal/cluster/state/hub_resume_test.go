package state

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/store"
)

// drainNotifications reads n notifications or fails at the deadline.
func drainNotifications(t *testing.T, ch <-chan Notification, n int) []Notification {
	t.Helper()
	var out []Notification
	deadline := time.After(2 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d of %d notifications", len(out), n)
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out after %d of %d notifications", len(out), n)
		}
	}
	return out
}

// TestResumeTokenRoundTrip pins the wire form and the parser's rejection
// of malformed input.
func TestResumeTokenRoundTrip(t *testing.T) {
	tok := ResumeToken{Jobs: []int64{1, 0, 7}, Nodes: []int64{4}}
	parsed, err := ParseResumeToken(tok.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != tok.String() {
		t.Fatalf("round trip %q → %q", tok.String(), parsed.String())
	}
	for _, bad := range []string{
		"", "garbage", "j1.2", "n1-j2", "j1.x-n2", "j-1-n2", "jn", "j1.2-n", "j-n1",
		"j1.2-n3.4.5extra!", "j999999999999999999999999-n1",
	} {
		if _, err := ParseResumeToken(bad); err == nil {
			t.Errorf("ParseResumeToken(%q) accepted", bad)
		}
	}
}

// TestSubscribeFromReplaysExactly: transitions between the token snapshot
// and the resume arrive exactly once, in per-job order.
func TestSubscribeFromReplaysExactly(t *testing.T) {
	c := New()
	// First stream: observe the submit, then die.
	sub1, tok, cancel1 := c.SubscribeWithToken(16)
	if err := c.SubmitJob(fidelityJob("lifecycle")); err != nil {
		t.Fatal(err)
	}
	first := drainNotifications(t, sub1, 1)
	lastToken, err := ParseResumeToken(first[0].Resume)
	if err != nil {
		t.Fatalf("notification token %q: %v", first[0].Resume, err)
	}
	cancel1()
	_ = tok

	// Offline transitions the dead stream never saw.
	for _, phase := range []api.JobPhase{api.JobScheduled, api.JobRunning, api.JobSucceeded} {
		phase := phase
		if _, _, err := c.Jobs.Update("lifecycle", func(j api.QuantumJob) (api.QuantumJob, error) {
			j.Status.Phase = phase
			return j, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	sub2, cancel2, err := c.SubscribeFrom(16, lastToken)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	replayed := drainNotifications(t, sub2, 3)
	wantPhases := []api.JobPhase{api.JobScheduled, api.JobRunning, api.JobSucceeded}
	for i, n := range replayed {
		if n.Kind != KindJob || n.Job == nil || n.Job.Status.Phase != wantPhases[i] {
			t.Fatalf("replayed[%d] = %+v, want phase %s", i, n, wantPhases[i])
		}
		if n.Resume == "" {
			t.Fatalf("replayed[%d] carries no resume token", i)
		}
	}
	// Live events continue after the replay with advancing tokens.
	c.RecordEvent("Job", "lifecycle", "noise", "not a job store event") // must NOT appear
	if _, _, err := c.Jobs.Update("lifecycle", func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Message = "post-resume"
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	live := drainNotifications(t, sub2, 1)
	if live[0].Job == nil || live[0].Job.Status.Message != "post-resume" {
		t.Fatalf("live tail = %+v", live[0])
	}
}

// TestSubscribeFromCompacted: a token below the journal horizon is
// rejected with store.ErrCompacted.
func TestSubscribeFromCompacted(t *testing.T) {
	c := New()
	c.Jobs.SetJournalCap(4)
	if err := c.SubmitJob(fidelityJob("churner")); err != nil {
		t.Fatal(err)
	}
	_, tok, cancel := c.SubscribeWithToken(16)
	cancel()
	for i := 0; i < 50; i++ {
		if _, _, err := c.Jobs.Update("churner", func(j api.QuantumJob) (api.QuantumJob, error) {
			j.Status.Message = fmt.Sprintf("tick %d", i)
			return j, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.SubscribeFrom(16, tok); !errors.Is(err, store.ErrCompacted) {
		t.Fatalf("stale resume err = %v, want ErrCompacted", err)
	}
}
