package state

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/store"
)

// Notification kinds.
const (
	KindJob  = "job"
	KindNode = "node"
)

// Notification is one cluster change fanned out by Subscribe: a job or
// node transition with the store's watch metadata attached. Exactly one of
// Job/Node is set, matching Kind. Resume is the cumulative position token
// as of this notification — hand it back to SubscribeFrom (or
// GET /v1/watch?resume=) to continue the stream after a drop without
// missing or repeating a transition. Treat it as opaque.
type Notification struct {
	Kind    string          `json:"kind"`
	Type    store.EventType `json:"type"`
	Job     *api.QuantumJob `json:"job,omitempty"`
	Node    *api.Node       `json:"node,omitempty"`
	Version int64           `json:"version"`
	Resume  string          `json:"resume,omitempty"`
}

// ResumeToken is a position in the merged job+node stream: one high-water
// mark per store shard (cross-shard delivery order is not version order,
// so a single scalar position could skip a slow shard's older event). The
// wire form is "j<m0>.<m1>...-n<m0>.<m1>..."; treat it as opaque outside
// this package.
type ResumeToken struct {
	Jobs  []int64
	Nodes []int64
}

// String renders the wire form of the token.
func (t ResumeToken) String() string {
	var b strings.Builder
	b.Grow(4 * (len(t.Jobs) + len(t.Nodes)))
	b.WriteByte('j')
	writeMarks(&b, t.Jobs)
	b.WriteString("-n")
	writeMarks(&b, t.Nodes)
	return b.String()
}

func writeMarks(b *strings.Builder, marks []int64) {
	for i, m := range marks {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatInt(m, 10))
	}
}

// maxTokenMarks bounds how many marks a client-supplied token may carry —
// far above any real shard count, low enough that a hostile token cannot
// balloon the parse.
const maxTokenMarks = 1024

// ParseResumeToken parses the wire form produced by ResumeToken.String.
// Malformed input returns an error the HTTP layer maps to 400 — tokens
// are client-supplied and must never panic the parser. A token whose mark
// counts no longer match the stores' shard layout parses fine here and
// surfaces as store.ErrCompacted at subscribe time (it names a position
// that can no longer be replayed).
func ParseResumeToken(s string) (ResumeToken, error) {
	bad := func() (ResumeToken, error) {
		return ResumeToken{}, fmt.Errorf("state: malformed resume token %q (want j<marks>-n<marks>)", s)
	}
	rest, ok := strings.CutPrefix(s, "j")
	if !ok {
		return bad()
	}
	jobsPart, nodesPart, ok := strings.Cut(rest, "-n")
	if !ok {
		return bad()
	}
	jobs, err := parseMarks(jobsPart)
	if err != nil {
		return bad()
	}
	nodes, err := parseMarks(nodesPart)
	if err != nil {
		return bad()
	}
	return ResumeToken{Jobs: jobs, Nodes: nodes}, nil
}

func parseMarks(s string) ([]int64, error) {
	parts := strings.Split(s, ".")
	if len(parts) == 0 || len(parts) > maxTokenMarks {
		return nil, fmt.Errorf("mark count out of range")
	}
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad mark %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// Subscribe is the cluster's broadcast hub: it merges the job and node
// stores' watch streams into one ordered channel of typed notifications —
// the feed behind WaitForJob, the /v1/watch SSE endpoint, qrioctl watch
// and the visualizer's live job view. The returned cancel function stops
// the stream and closes the channel.
//
// Delivery semantics are the store's: a subscriber that falls more than
// the buffer behind loses events, so consumers needing certainty must
// re-List on their own cadence (level-triggered reconciliation) — or
// resume from the notification tokens via SubscribeFrom, which replays
// exactly what a drop skipped.
func (c *Cluster) Subscribe(buffer int) (<-chan Notification, func()) {
	if buffer <= 0 {
		buffer = 128
	}
	// Internal consumers (WaitForJob, the visualizer feed) never read
	// Resume, so this path skips both the mark snapshot and the per-event
	// token rendering.
	jobCh, cancelJobs := c.Jobs.Watch(buffer)
	nodeCh, cancelNodes := c.Nodes.Watch(buffer)
	out, cancel := c.mergeStreams(jobCh, nodeCh, cancelJobs, cancelNodes, ResumeToken{}, buffer, false, false)
	return out, cancel
}

// SubscribeWithToken is Subscribe plus the stream's starting position:
// the token a consumer should resume from if the connection breaks before
// any notification arrives. Notifications carry cumulative tokens from
// there on.
func (c *Cluster) SubscribeWithToken(buffer int) (<-chan Notification, ResumeToken, func()) {
	if buffer <= 0 {
		buffer = 128
	}
	// Snapshot the marks BEFORE registering the watches: an event landing
	// in between carries a version above its shard's mark, so a resume
	// from this token replays rather than skips it. Tokens must err low,
	// never high. The merge loop advances its own clone; the returned
	// snapshot stays immutable (callers stamp SYNC events with it
	// concurrently, and a SYNC token must never advance past an event the
	// client has not been written yet).
	start := ResumeToken{Jobs: c.Jobs.Marks(), Nodes: c.Nodes.Marks()}
	work := ResumeToken{
		Jobs:  append([]int64(nil), start.Jobs...),
		Nodes: append([]int64(nil), start.Nodes...),
	}
	jobCh, cancelJobs := c.Jobs.Watch(buffer)
	nodeCh, cancelNodes := c.Nodes.Watch(buffer)
	out, cancel := c.mergeStreams(jobCh, nodeCh, cancelJobs, cancelNodes, work, buffer, false, true)
	return out, start, cancel
}

// SubscribeFrom resumes the merged stream from a token: every job and
// node transition after the token's marks is replayed from the stores'
// journals, then the stream continues live. If either store has already
// compacted past the token — or the token predates a different shard
// layout — SubscribeFrom returns store.ErrCompacted and the consumer must
// fall back to a fresh Subscribe plus re-List. Unlike Subscribe, a
// resumed stream never drops events silently: if the consumer falls too
// far behind the channel closes, and it resumes again from its last
// token.
func (c *Cluster) SubscribeFrom(buffer int, token ResumeToken) (<-chan Notification, func(), error) {
	if buffer <= 0 {
		buffer = 128
	}
	jobCh, cancelJobs, err := c.Jobs.WatchFrom(token.Jobs, buffer)
	if err != nil {
		c.countResume(err)
		return nil, nil, err
	}
	nodeCh, cancelNodes, err := c.Nodes.WatchFrom(token.Nodes, buffer)
	if err != nil {
		cancelJobs()
		c.countResume(err)
		return nil, nil, err
	}
	c.countResume(nil)
	// Clone the marks: the merge loop advances them in place, and the
	// caller's token must stay readable (error paths, retries).
	token = ResumeToken{
		Jobs:  append([]int64(nil), token.Jobs...),
		Nodes: append([]int64(nil), token.Nodes...),
	}
	out, cancel := c.mergeStreams(jobCh, nodeCh, cancelJobs, cancelNodes, token, buffer, true, true)
	return out, cancel, nil
}

// countResume records a resume attempt's outcome: nil means the journal
// replayed the token, ErrCompacted means the client must start over.
// Other errors (malformed shard layout surfaces as compacted upstream)
// stay uncounted.
func (c *Cluster) countResume(err error) {
	m := c.Metrics
	if m == nil {
		return
	}
	switch {
	case err == nil:
		m.WatchResumes.With("replayed").Inc()
	case errors.Is(err, store.ErrCompacted):
		m.WatchResumes.With("compacted").Inc()
	}
}

// hubRegistry tracks the live merged streams so a metrics scrape can
// report subscriber count and fanout backlog (Σ buffered notifications)
// without touching the streams themselves.
type hubRegistry struct {
	mu      sync.Mutex
	next    int
	streams map[int]chan Notification
}

func (h *hubRegistry) register(ch chan Notification) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.next++
	h.streams[h.next] = ch
	return h.next
}

func (h *hubRegistry) unregister(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.streams, id)
}

// WatchHubStats reports the broadcast hub's live subscriber count and
// the total notifications sitting in subscriber buffers (fanout lag) —
// sampled by the metrics scrape.
func (c *Cluster) WatchHubStats() (streams, backlog int) {
	c.hub.mu.Lock()
	defer c.hub.mu.Unlock()
	for _, ch := range c.hub.streams {
		backlog += len(ch)
	}
	return len(c.hub.streams), backlog
}

// mergeStreams fans the two store streams into one Notification channel.
// With stamp set, each notification carries the cumulative resume token
// (token must be a private clone — it is advanced in place); without it,
// Resume stays empty and no per-event token string is rendered. When
// closeOnEither is set (resumed streams), one source closing ends the
// merged stream — the close means events were missed, and only a resume
// can heal that; plain streams keep draining the surviving source.
func (c *Cluster) mergeStreams(
	jobCh <-chan store.WatchEvent[api.QuantumJob],
	nodeCh <-chan store.WatchEvent[api.Node],
	cancelJobs, cancelNodes func(),
	token ResumeToken, buffer int, closeOnEither, stamp bool,
) (<-chan Notification, func()) {
	out := make(chan Notification, buffer)
	done := make(chan struct{})
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(done)
			cancelJobs()
			cancelNodes()
		})
	}
	id := c.hub.register(out)
	go func() {
		defer c.hub.unregister(id)
		defer close(out)
		for jobCh != nil || nodeCh != nil {
			var n Notification
			select {
			case <-done:
				return
			case ev, ok := <-jobCh:
				if !ok {
					if closeOnEither {
						return
					}
					jobCh = nil
					continue
				}
				j := ev.Object
				n = Notification{Kind: KindJob, Type: ev.Type, Job: &j, Version: ev.Version}
				if stamp {
					if ev.Shard < len(token.Jobs) && ev.Version > token.Jobs[ev.Shard] {
						token.Jobs[ev.Shard] = ev.Version
					}
					n.Resume = token.String()
				}
			case ev, ok := <-nodeCh:
				if !ok {
					if closeOnEither {
						return
					}
					nodeCh = nil
					continue
				}
				nd := ev.Object
				n = Notification{Kind: KindNode, Type: ev.Type, Node: &nd, Version: ev.Version}
				if stamp {
					if ev.Shard < len(token.Nodes) && ev.Version > token.Nodes[ev.Shard] {
						token.Nodes[ev.Shard] = ev.Version
					}
					n.Resume = token.String()
				}
			}
			select {
			case out <- n:
			case <-done:
				return
			}
		}
	}()
	return out, cancel
}
