package state

import (
	"sync"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/store"
)

// Notification kinds.
const (
	KindJob  = "job"
	KindNode = "node"
)

// Notification is one cluster change fanned out by Subscribe: a job or
// node transition with the store's watch metadata attached. Exactly one of
// Job/Node is set, matching Kind.
type Notification struct {
	Kind    string          `json:"kind"`
	Type    store.EventType `json:"type"`
	Job     *api.QuantumJob `json:"job,omitempty"`
	Node    *api.Node       `json:"node,omitempty"`
	Version int64           `json:"version"`
}

// Subscribe is the cluster's broadcast hub: it merges the job and node
// stores' watch streams into one ordered channel of typed notifications —
// the feed behind WaitForJob, the /v1/watch SSE endpoint, qrioctl watch
// and the visualizer's live job view. The returned cancel function stops
// the stream and closes the channel.
//
// Delivery semantics are the store's: a subscriber that falls more than
// the buffer behind loses events, so consumers needing certainty must
// re-List on their own cadence (level-triggered reconciliation).
func (c *Cluster) Subscribe(buffer int) (<-chan Notification, func()) {
	if buffer <= 0 {
		buffer = 128
	}
	jobCh, cancelJobs := c.Jobs.Watch(buffer)
	nodeCh, cancelNodes := c.Nodes.Watch(buffer)
	out := make(chan Notification, buffer)
	done := make(chan struct{})
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(done)
			cancelJobs()
			cancelNodes()
		})
	}
	go func() {
		defer close(out)
		for jobCh != nil || nodeCh != nil {
			var n Notification
			select {
			case <-done:
				return
			case ev, ok := <-jobCh:
				if !ok {
					jobCh = nil
					continue
				}
				j := ev.Object
				n = Notification{Kind: KindJob, Type: ev.Type, Job: &j, Version: ev.Version}
			case ev, ok := <-nodeCh:
				if !ok {
					nodeCh = nil
					continue
				}
				nd := ev.Object
				n = Notification{Kind: KindNode, Type: ev.Type, Node: &nd, Version: ev.Version}
			}
			select {
			case out <- n:
			case <-done:
				return
			}
		}
	}()
	return out, cancel
}
