package state

import (
	"fmt"
	"testing"
	"time"

	"qrio/internal/cluster/api"
)

// TestScheduledIndexTracksLifecycle walks one job through the phases and
// checks the by-node index agrees with the store at every step.
func TestScheduledIndexTracksLifecycle(t *testing.T) {
	c := New()
	c.AddNode(testBackend(t, "dev-a"))
	c.AddNode(testBackend(t, "dev-b"))
	if err := c.SubmitJob(fidelityJob("j1")); err != nil {
		t.Fatal(err)
	}
	if got := c.ScheduledJobs("dev-a"); len(got) != 0 {
		t.Fatalf("pending job indexed as scheduled: %v", got)
	}

	if err := c.BindJob("j1", "dev-a", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := c.ScheduledJobs("dev-a"); len(got) != 1 || got[0].Name != "j1" {
		t.Fatalf("after bind: %v", got)
	}
	if got := c.ScheduledJobs("dev-b"); len(got) != 0 {
		t.Fatalf("job indexed on wrong node: %v", got)
	}

	// Kubelet claims the job: Scheduled → Running drops it from the index.
	if _, _, err := c.Jobs.Update("j1", func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = api.JobRunning
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.ScheduledJobs("dev-a"); len(got) != 0 {
		t.Fatalf("running job still indexed: %v", got)
	}

	// Requeue (Running → Pending, node cleared) keeps it out; a re-bind to
	// the other node moves it.
	if _, _, err := c.Jobs.Update("j1", func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = api.JobPending
		j.Status.Node = ""
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.BindJob("j1", "dev-b", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := c.ScheduledJobs("dev-b"); len(got) != 1 {
		t.Fatalf("after re-bind: %v", got)
	}
	if got := c.ScheduledJobs("dev-a"); len(got) != 0 {
		t.Fatalf("stale mapping on old node: %v", got)
	}

	// Cancel deletes the Scheduled entry.
	if _, err := c.CancelJob("j1"); err != nil {
		t.Fatal(err)
	}
	if got := c.ScheduledJobs("dev-b"); len(got) != 0 {
		t.Fatalf("cancelled job still indexed: %v", got)
	}
}

func TestScheduledJobsOrdering(t *testing.T) {
	c := New()
	// Bypass SubmitJob/BindJob to pin CreatedAt and node directly.
	base := time.Now()
	for i, name := range []string{"c-late", "a-early", "b-early"} {
		j := fidelityJob(name)
		j.UID = c.NextUID("job")
		j.CreatedAt = base
		if name == "c-late" {
			j.CreatedAt = base.Add(time.Second)
		}
		j.Status.Phase = api.JobScheduled
		j.Status.Node = "dev-a"
		if _, err := c.Jobs.Create(j); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	got := c.ScheduledJobs("dev-a")
	want := []string{"a-early", "b-early", "c-late"}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i].Name != want[i] {
			t.Fatalf("order = [%s %s %s], want %v", got[0].Name, got[1].Name, got[2].Name, want)
		}
	}
}

// TestScheduledJobsAllocs guards the whole point of the index: the
// kubelet's launch poll must cost O(jobs on this node), not O(jobs in the
// cluster). A big backlog of terminal and pending jobs must not show up
// in the allocation count.
func TestScheduledJobsAllocs(t *testing.T) {
	c := New()
	for i := 0; i < 2000; i++ {
		j := fidelityJob(fmt.Sprintf("bulk-%04d", i))
		j.UID = c.NextUID("job")
		switch i % 3 {
		case 0:
			j.Status.Phase = api.JobSucceeded
		case 1:
			j.Status.Phase = api.JobPending
		case 2:
			j.Status.Phase = api.JobScheduled
			j.Status.Node = fmt.Sprintf("other-node-%d", i%7)
		}
		if _, err := c.Jobs.Create(j); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		j := fidelityJob(fmt.Sprintf("mine-%d", i))
		j.UID = c.NextUID("job")
		j.Status.Phase = api.JobScheduled
		j.Status.Node = "dev-a"
		if _, err := c.Jobs.Create(j); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if got := c.ScheduledJobs("dev-a"); len(got) != 2 {
			t.Fatalf("got %d jobs", len(got))
		}
	})
	// Two deep copies plus the slice and sort scaffolding — nowhere near
	// the 2000-job walk this replaced. The bound is deliberately loose;
	// only O(cluster) regressions should trip it.
	if allocs > 50 {
		t.Fatalf("ScheduledJobs allocations = %.0f, want O(node jobs)", allocs)
	}
}
