package state

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/archive"
	"qrio/internal/cluster/store"
)

// RetentionPolicy bounds how long terminal (Succeeded/Failed/Cancelled)
// jobs stay resident in the hot store before the controller's sweep moves
// them — with their event trails — into the archive tier. The zero policy
// keeps everything resident forever, today's behaviour.
type RetentionPolicy struct {
	// MaxTerminalAge archives terminal jobs older than this (measured
	// from FinishedAt, falling back to CreatedAt). 0 = no age bound.
	MaxTerminalAge time.Duration
	// MaxTerminalCount caps how many terminal jobs stay resident; the
	// oldest beyond the cap are archived. 0 = no count bound.
	MaxTerminalCount int
}

// Enabled reports whether the policy archives anything at all.
func (p RetentionPolicy) Enabled() bool {
	return p.MaxTerminalAge > 0 || p.MaxTerminalCount > 0
}

// terminalEntry is one terminal job, ordered by (finished, name) — the
// archive sweep's oldest-first order.
type terminalEntry struct {
	name     string
	finished time.Time
}

// terminalIndex tracks resident terminal jobs incrementally, fed by the
// same store hook chain as the pending and usage indexes, so the archive
// sweep is O(candidates) instead of a scan over every resident job.
type terminalIndex struct {
	mu      sync.Mutex
	entries []terminalEntry          // sorted by (finished, name)
	member  map[string]terminalEntry // job name → its position key
}

// terminalTimeOf is the retention clock for one job: when it finished,
// falling back to creation time for terminal objects that never recorded
// a FinishedAt (e.g. jobs seeded directly into the store).
func terminalTimeOf(j *api.QuantumJob) time.Time {
	if j.Status.FinishedAt != nil {
		return *j.Status.FinishedAt
	}
	return j.CreatedAt
}

func (t *terminalIndex) onJobEvent(ev store.WatchEvent[api.QuantumJob]) {
	j := ev.Object
	if ev.Type != store.Deleted && j.Status.Phase.Terminal() {
		t.add(j.Name, terminalTimeOf(&j))
		return
	}
	t.remove(j.Name)
}

// terminalSlot returns the sorted position of (finished, name).
func terminalSlot(entries []terminalEntry, name string, finished time.Time) int {
	return sort.Search(len(entries), func(i int) bool {
		e := entries[i]
		if !e.finished.Equal(finished) {
			return e.finished.After(finished)
		}
		return e.name >= name
	})
}

func (t *terminalIndex) add(name string, finished time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.member[name]; ok {
		return
	}
	i := terminalSlot(t.entries, name, finished)
	t.entries = append(t.entries, terminalEntry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = terminalEntry{name: name, finished: finished}
	t.member[name] = t.entries[i]
}

func (t *terminalIndex) remove(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ref, ok := t.member[name]
	if !ok {
		return
	}
	delete(t.member, name)
	i := terminalSlot(t.entries, name, ref.finished)
	if i < len(t.entries) && t.entries[i].name == name {
		if i == 0 {
			// The archive sweep always removes oldest-first, so this is the
			// hot case: slide the head forward instead of copying the whole
			// tail down — O(1) instead of O(residents) per archived job.
			t.entries[0] = terminalEntry{}
			t.entries = t.entries[1:]
		} else {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
		}
	}
}

// count reports the resident terminal-job count.
func (t *terminalIndex) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// expired snapshots the names the policy wants archived, oldest first:
// everything past the age bound plus the oldest overflow past the count
// bound.
func (t *terminalIndex) expired(now time.Time, p RetentionPolicy) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	overflow := 0
	if p.MaxTerminalCount > 0 && len(t.entries) > p.MaxTerminalCount {
		overflow = len(t.entries) - p.MaxTerminalCount
	}
	var out []string
	for i, e := range t.entries {
		if i < overflow || (p.MaxTerminalAge > 0 && now.Sub(e.finished) > p.MaxTerminalAge) {
			out = append(out, e.name)
			continue
		}
		// Entries are sorted oldest-first: past the count overflow, the
		// first non-expired entry means every later one is younger still.
		break
	}
	return out
}

// ResultFor resolves a job's execution result (logs included) across
// both tiers: the hot Results store first, then the retired copy inside
// the job's archive entry. Every log/result read path goes through this,
// so archiving a job never makes its logs unreachable.
func (c *Cluster) ResultFor(name string) (api.Result, bool) {
	if res, _, err := c.Results.Get(name); err == nil {
		return res, true
	}
	if entry, ok := c.Archived.Get(name); ok && entry.Result != nil {
		return *entry.Result, true
	}
	return api.Result{}, false
}

// TerminalCount reports how many terminal jobs remain resident in the hot
// store — the figure retention keeps flat.
func (c *Cluster) TerminalCount() int {
	return c.terminal.count()
}

// ArchiveTerminal runs one retention sweep: terminal jobs the policy no
// longer keeps resident move, with their indexed event trails, into the
// archive tier. Per job the order is (1) copy into the archive, (2)
// conditionally delete from the hot store iff the job is still the exact
// terminal object that was copied (same resource version) — so a racing
// cancel, controller retry or requeue always wins and the archive copy is
// rolled back; there is never a moment when a job is in neither tier. The
// hot-store delete fires the usual mutation hooks, so the pending, usage
// and terminal indexes can never reference an archived key. It returns
// the number of jobs archived.
func (c *Cluster) ArchiveTerminal(now time.Time, policy RetentionPolicy) int {
	if !policy.Enabled() {
		return 0
	}
	archived := 0
	for _, name := range c.terminal.expired(now, policy) {
		job, version, err := c.Jobs.Get(name)
		if err != nil || !job.Status.Phase.Terminal() {
			continue // already gone or resurrected since the snapshot
		}
		entry := archive.Entry{Job: job, Events: c.EventsAbout(name), ArchivedAt: now}
		if res, _, rerr := c.Results.Get(name); rerr == nil {
			entry.Result = &res
		}
		if err := c.Archived.Put(entry); err != nil {
			continue // concurrent sweep already took it
		}
		err = c.Jobs.DeleteFunc(name, func(j api.QuantumJob, v int64) error {
			if v != version {
				return fmt.Errorf("state: job %s changed during archival", name)
			}
			return nil
		})
		if err != nil {
			// Lost the race (cancel/retry/another sweep): the hot object is
			// authoritative again, drop the archive copy.
			c.Archived.Remove(name)
			continue
		}
		archived++
		if entry.Result != nil {
			// Retire the execution record (logs included) from the hot tier
			// only once the archive holds its copy. A result that lands
			// between the capture above and here (the cancelled-finish path
			// writes it after the terminal phase) simply stays resident —
			// ResultFor reads the hot tier first, so nothing is ever lost.
			c.Results.Delete(name)
		}
		for _, e := range entry.Events {
			c.Events.Delete(e.Name)
		}
	}
	return archived
}
