package state

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/obs"
)

func testBackend(t *testing.T, name string) *device.Backend {
	t.Helper()
	b, err := device.UniformBackend(name, graph.Line(5), 0.1, 0.01, 0.05, 500e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fidelityJob(name string) api.QuantumJob {
	return api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: api.JobSpec{
			QASM:           "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];",
			Strategy:       api.StrategyFidelity,
			TargetFidelity: 0.9,
		},
	}
}

func TestAddNodePublishesLabels(t *testing.T) {
	c := New()
	b := testBackend(t, "dev-a")
	n, err := c.AddNode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n.Labels[api.LabelQubits] != "5" {
		t.Errorf("qubit label = %q", n.Labels[api.LabelQubits])
	}
	if v, ok := api.ParseFloatLabel(n.Labels, api.LabelAvg2QErr); !ok || v != 0.1 {
		t.Errorf("avg 2q label = %v %v", v, ok)
	}
	if v, ok := api.ParseFloatLabel(n.Labels, api.LabelAvgT1us); !ok || v != 500e3 {
		t.Errorf("T1 label = %v %v", v, ok)
	}
	if got, _ := strconv.ParseInt(n.Labels[api.LabelCPUMillis], 10, 64); got != b.CPUMillis {
		t.Errorf("cpu label = %v", n.Labels[api.LabelCPUMillis])
	}
	if n.Status.Phase != api.NodeReady {
		t.Errorf("new node phase = %s", n.Status.Phase)
	}
	// Backend round trip through the node object.
	back, err := c.Backend("dev-a")
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "dev-a" || back.NumQubits != 5 {
		t.Errorf("backend decode = %v", back)
	}
}

func TestAddNodeRejectsDuplicatesAndInvalid(t *testing.T) {
	c := New()
	b := testBackend(t, "dev-a")
	if _, err := c.AddNode(b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode(b); err == nil {
		t.Fatal("duplicate node accepted")
	}
	bad := testBackend(t, "dev-bad")
	bad.Name = "" // invalidate after construction
	if _, err := c.AddNode(bad); err == nil {
		t.Fatal("invalid backend accepted")
	}
}

func TestSubmitJobDefaultsAndValidation(t *testing.T) {
	c := New()
	if err := c.SubmitJob(fidelityJob("j1")); err != nil {
		t.Fatal(err)
	}
	j, _, err := c.Jobs.Get("j1")
	if err != nil {
		t.Fatal(err)
	}
	if j.Spec.Shots != 1024 {
		t.Errorf("default shots = %d", j.Spec.Shots)
	}
	if j.Status.Phase != api.JobPending {
		t.Errorf("phase = %s", j.Status.Phase)
	}
	bad := fidelityJob("j2")
	bad.Spec.TargetFidelity = 1.5
	if err := c.SubmitJob(bad); err == nil {
		t.Fatal("invalid fidelity accepted")
	}
	noStrategy := fidelityJob("j3")
	noStrategy.Spec.Strategy = "magic"
	if err := c.SubmitJob(noStrategy); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestBindJobLifecycle(t *testing.T) {
	c := New()
	c.AddNode(testBackend(t, "dev-a"))
	job := fidelityJob("j1")
	job.Spec.Resources = api.ResourceRequirements{CPUMillis: 1000, MemoryMB: 512}
	if err := c.SubmitJob(job); err != nil {
		t.Fatal(err)
	}
	if err := c.BindJob("j1", "dev-a", 0.25); err != nil {
		t.Fatal(err)
	}
	j, _, _ := c.Jobs.Get("j1")
	if j.Status.Phase != api.JobScheduled || j.Status.Node != "dev-a" || j.Status.Score != 0.25 {
		t.Fatalf("bound job = %+v", j.Status)
	}
	n, _, _ := c.Nodes.Get("dev-a")
	if !n.Status.HasRunningJob("j1") || n.Status.CPUMillisInUse != 1000 || n.Status.MemoryMBInUse != 512 {
		t.Fatalf("node after bind = %+v", n.Status)
	}
	// Double bind must fail (job no longer pending).
	if err := c.BindJob("j1", "dev-a", 0); err == nil {
		t.Fatal("double bind accepted")
	}
	// A second pending job cannot bind to the busy node.
	c.SubmitJob(fidelityJob("j2"))
	if err := c.BindJob("j2", "dev-a", 0); err == nil {
		t.Fatal("bind to busy node accepted")
	}
	c.ReleaseNode("dev-a", "j1")
	n, _, _ = c.Nodes.Get("dev-a")
	if len(n.Status.RunningJobs) != 0 || n.Status.CPUMillisInUse != 0 {
		t.Fatalf("node after release = %+v", n.Status)
	}
	if err := c.BindJob("j2", "dev-a", 0.5); err != nil {
		t.Fatalf("bind after release failed: %v", err)
	}
}

func TestBindJobMultiSlotNode(t *testing.T) {
	c := New()
	c.AddNode(testBackend(t, "multi"))
	c.Nodes.Update("multi", func(n api.Node) (api.Node, error) {
		n.Spec.MaxContainers = 2
		return n, nil
	})
	for _, name := range []string{"j1", "j2", "j3"} {
		if err := c.SubmitJob(fidelityJob(name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.BindJob("j1", "multi", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.BindJob("j2", "multi", 0); err != nil {
		t.Fatalf("second slot rejected: %v", err)
	}
	// Third bind exceeds the slot cap.
	if err := c.BindJob("j3", "multi", 0); err == nil {
		t.Fatal("bind beyond container capacity accepted")
	}
	n, _, _ := c.Nodes.Get("multi")
	if len(n.Status.RunningJobs) != 2 || !n.Status.HasRunningJob("j1") || !n.Status.HasRunningJob("j2") {
		t.Fatalf("running jobs = %v", n.Status.RunningJobs)
	}
	// Releasing one slot admits the waiting job.
	c.ReleaseNode("multi", "j1")
	if err := c.BindJob("j3", "multi", 0); err != nil {
		t.Fatalf("bind after slot release failed: %v", err)
	}
	n, _, _ = c.Nodes.Get("multi")
	if n.Status.HasRunningJob("j1") || !n.Status.HasRunningJob("j3") {
		t.Fatalf("running jobs after release = %v", n.Status.RunningJobs)
	}
}

func TestBindJobRejectsResourceOvercommit(t *testing.T) {
	c := New()
	c.AddNode(testBackend(t, "dev"))
	c.Nodes.Update("dev", func(n api.Node) (api.Node, error) {
		n.Spec.MaxContainers = 8
		return n, nil
	})
	n, _, _ := c.Nodes.Get("dev")
	big := fidelityJob("big")
	big.Spec.Resources.CPUMillis = n.Spec.CPUMillis - 100
	if err := c.SubmitJob(big); err != nil {
		t.Fatal(err)
	}
	small := fidelityJob("small")
	small.Spec.Resources.CPUMillis = 500
	if err := c.SubmitJob(small); err != nil {
		t.Fatal(err)
	}
	if err := c.BindJob("big", "dev", 0); err != nil {
		t.Fatal(err)
	}
	// Free slots remain, but CPU headroom is gone: bind must refuse.
	if err := c.BindJob("small", "dev", 0); err == nil {
		t.Fatal("CPU overcommit accepted")
	}
}

func TestEventsAboutSortsByTime(t *testing.T) {
	c := New()
	c.RecordEvent("Job", "j1", "A", "first")
	c.RecordEvent("Job", "j2", "X", "other subject")
	c.RecordEvent("Job", "j1", "B", "second")
	events := c.EventsAbout("j1")
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Reason != "A" || events[1].Reason != "B" {
		t.Fatalf("order wrong: %v %v", events[0].Reason, events[1].Reason)
	}
}

func TestNextUIDUnique(t *testing.T) {
	c := New()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		uid := c.NextUID("x")
		if seen[uid] {
			t.Fatalf("duplicate uid %s", uid)
		}
		seen[uid] = true
	}
}

// --- incremental index coverage -----------------------------------------

// terminalJob builds a job already in a terminal phase — resident history
// the hot paths must never touch.
func terminalJob(name string) api.QuantumJob {
	j := fidelityJob(name)
	j.Status = api.JobStatus{Phase: api.JobSucceeded}
	return j
}

// TestPendingJobsFIFOThroughLifecycle drives the pending index through
// every writer: submit, bind, cancel, and the controller-style direct
// phase flip back to Pending (which reaches the index via the store hook,
// not a state method).
func TestPendingJobsFIFOThroughLifecycle(t *testing.T) {
	c := New()
	if _, err := c.AddNode(testBackend(t, "dev-a")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"j1", "j2", "j3"} {
		if err := c.SubmitJob(fidelityJob(name)); err != nil {
			t.Fatal(err)
		}
	}
	names := func() []string {
		var out []string
		for _, j := range c.PendingJobs() {
			out = append(out, j.Name)
		}
		return out
	}
	if got := names(); len(got) != 3 || got[0] != "j1" || got[1] != "j2" || got[2] != "j3" {
		t.Fatalf("initial queue = %v", got)
	}
	if err := c.BindJob("j1", "dev-a", 1.0); err != nil {
		t.Fatal(err)
	}
	if got := names(); len(got) != 2 || got[0] != "j2" {
		t.Fatalf("after bind queue = %v", got)
	}
	if _, err := c.CancelJob("j2"); err != nil {
		t.Fatal(err)
	}
	if got := names(); len(got) != 1 || got[0] != "j3" {
		t.Fatalf("after cancel queue = %v", got)
	}
	// Controller requeue path: a direct store update back to Pending must
	// re-enter the queue in CreatedAt order (j1 is older than j3).
	if _, _, err := c.Jobs.Update("j1", func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = api.JobPending
		j.Status.Node = ""
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := names(); len(got) != 2 || got[0] != "j1" || got[1] != "j3" {
		t.Fatalf("after requeue queue = %v (FIFO by CreatedAt broken)", got)
	}
	if c.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d", c.PendingCount())
	}
}

// TestPendingJobsCostIndependentOfHistory is the regression guard for the
// scheduler's hot path: listing the pending queue must not allocate
// proportionally to the terminal jobs resident in the store. Before the
// incremental index, this walked (and deep-copied) every job ever
// submitted.
func TestPendingJobsCostIndependentOfHistory(t *testing.T) {
	c := New()
	const history = 5000
	for i := 0; i < history; i++ {
		if _, err := c.Jobs.Create(terminalJob(fmt.Sprintf("done-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	const pending = 8
	for i := 0; i < pending; i++ {
		if err := c.SubmitJob(fidelityJob(fmt.Sprintf("queued-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if got := len(c.PendingJobs()); got != pending {
			t.Fatalf("PendingJobs = %d, want %d", got, pending)
		}
	})
	// ~a handful of allocations per pending job; anything within an order
	// of magnitude of the history size means the full scan came back.
	if allocs > 40*pending {
		t.Fatalf("PendingJobs did %.0f allocs for %d pending jobs with %d terminal resident — scaling with history",
			allocs, pending, history)
	}
}

// TestEventsAboutUsesIndex: per-object retrieval, oldest first, unaffected
// by other objects' events, and consistent under event GC deletes.
func TestEventsAboutUsesIndex(t *testing.T) {
	c := New()
	c.RecordEvent("Job", "a", "R1", "first")
	c.RecordEvent("Job", "b", "other", "noise")
	c.RecordEvent("Job", "a", "R2", "second")
	evs := c.EventsAbout("a")
	if len(evs) != 2 || evs[0].Reason != "R1" || evs[1].Reason != "R2" {
		t.Fatalf("EventsAbout(a) = %+v", evs)
	}
	for _, e := range evs {
		if !e.Time.Equal(e.CreatedAt) {
			t.Fatalf("event %s stamped twice: Time %v != CreatedAt %v", e.Name, e.Time, e.CreatedAt)
		}
	}
	// GC path: deleting from the store must drop the index entry too.
	if err := c.Events.Delete(evs[0].Name); err != nil {
		t.Fatal(err)
	}
	evs = c.EventsAbout("a")
	if len(evs) != 1 || evs[0].Reason != "R2" {
		t.Fatalf("EventsAbout(a) after delete = %+v", evs)
	}
	if got := c.EventsAbout("nobody"); len(got) != 0 {
		t.Fatalf("EventsAbout(nobody) = %+v", got)
	}
}

// TestEventIndexRingCap: one chatty object cannot grow its index without
// bound — the oldest entries fall out once EventIndexCap is reached.
func TestEventIndexRingCap(t *testing.T) {
	c := New()
	const extra = 10
	for i := 0; i < EventIndexCap+extra; i++ {
		c.RecordEvent("Job", "chatty", "Tick", fmt.Sprintf("event %d", i))
	}
	evs := c.EventsAbout("chatty")
	if len(evs) != EventIndexCap {
		t.Fatalf("indexed %d events, want cap %d", len(evs), EventIndexCap)
	}
	if want := fmt.Sprintf("event %d", extra); evs[0].Message != want {
		t.Fatalf("oldest retained = %q, want %q (ring did not drop the head)", evs[0].Message, want)
	}
	if want := fmt.Sprintf("event %d", EventIndexCap+extra-1); evs[len(evs)-1].Message != want {
		t.Fatalf("newest retained = %q, want %q", evs[len(evs)-1].Message, want)
	}
}

func tenantFidelityJob(name, tenant string, shots int) api.QuantumJob {
	j := fidelityJob(name)
	j.Spec.Tenant = tenant
	j.Spec.Shots = shots
	j.Spec.Requirements.MinQubits = 2
	return j
}

// TestTenantUsageThroughLifecycle drives the hook-fed tenant usage index
// through submit → bind → terminal/cancel and checks every aggregate at
// each step, including the qubit-second accounting.
func TestTenantUsageThroughLifecycle(t *testing.T) {
	c := New()
	if _, err := c.AddNode(testBackend(t, "dev-a")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.SubmitJob(tenantFidelityJob(fmt.Sprintf("a-%d", i), "alice", 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SubmitJob(tenantFidelityJob("b-0", "bob", 500)); err != nil {
		t.Fatal(err)
	}
	perAliceJob := api.EstimateQubitSeconds(2, 1000)
	u := c.TenantUsage("alice")
	if u.Pending != 3 || u.Active != 0 || u.QubitSeconds != 3*perAliceJob {
		t.Fatalf("alice after submit: %+v", u)
	}
	if u := c.TenantUsage("bob"); u.Pending != 1 || u.QubitSeconds != api.EstimateQubitSeconds(2, 500) {
		t.Fatalf("bob after submit: %+v", u)
	}

	// Bind: pending → active, qubit-seconds unchanged (still in flight).
	if err := c.BindJob("a-0", "dev-a", 1.0); err != nil {
		t.Fatal(err)
	}
	u = c.TenantUsage("alice")
	if u.Pending != 2 || u.Active != 1 || u.QubitSeconds != 3*perAliceJob {
		t.Fatalf("alice after bind: %+v", u)
	}

	// Terminal phase releases everything the job was charged for.
	if _, _, err := c.Jobs.Update("a-0", func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = api.JobSucceeded
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	u = c.TenantUsage("alice")
	if u.Pending != 2 || u.Active != 0 || u.QubitSeconds != 2*perAliceJob {
		t.Fatalf("alice after terminal: %+v", u)
	}

	// Cancel releases a pending job; deletion releases the other, and an
	// empty tenant vanishes from the listing.
	if _, err := c.CancelJob("a-1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Jobs.Delete("a-2"); err != nil {
		t.Fatal(err)
	}
	if u = c.TenantUsage("alice"); u.Pending != 0 || u.Active != 0 || u.QubitSeconds != 0 {
		t.Fatalf("alice after cancel+delete: %+v", u)
	}
	usages := c.TenantUsages()
	if len(usages) != 1 || usages[0].Tenant != "bob" {
		t.Fatalf("TenantUsages = %+v, want only bob", usages)
	}

	// Pre-tenancy jobs (no tenant set anywhere) land on the default tenant.
	if _, err := c.Jobs.Create(api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: "legacy"},
		Spec:       api.JobSpec{QASM: "x", Strategy: api.StrategyFidelity, TargetFidelity: 1},
		Status:     api.JobStatus{Phase: api.JobPending},
	}); err != nil {
		t.Fatal(err)
	}
	if u := c.TenantUsage(""); u.Tenant != api.DefaultTenant || u.Pending != 1 {
		t.Fatalf("default-tenant usage: %+v", u)
	}
}

// TestPendingJobsGlobalFIFOAcrossTenants pins the merge contract: the
// per-tenant sub-queues reassemble into exactly the (CreatedAt, Name)
// global FIFO the pre-tenancy single queue produced.
func TestPendingJobsGlobalFIFOAcrossTenants(t *testing.T) {
	c := New()
	// Alternate tenants on submission; SubmitJob stamps increasing
	// CreatedAt, so global FIFO order is exactly submission order.
	var want []string
	for i := 0; i < 6; i++ {
		tenant := "alice"
		if i%2 == 1 {
			tenant = "bob"
		}
		name := fmt.Sprintf("j-%d", i)
		if err := c.SubmitJob(tenantFidelityJob(name, tenant, 1)); err != nil {
			t.Fatal(err)
		}
		want = append(want, name)
	}
	got := c.PendingJobs()
	if len(got) != len(want) {
		t.Fatalf("PendingJobs = %d jobs, want %d", len(got), len(want))
	}
	for i, j := range got {
		if j.Name != want[i] {
			t.Fatalf("global FIFO broken at %d: got %s, want %s", i, j.Name, want[i])
		}
	}
	if c.PendingCount() != len(want) {
		t.Fatalf("PendingCount = %d", c.PendingCount())
	}
}

// TestPendingJobsCappedPerTenant: the capped snapshot keeps each
// tenant's oldest jobs — never a later job before an earlier one — and
// merges what it keeps in the same global FIFO order PendingJobs uses.
func TestPendingJobsCappedPerTenant(t *testing.T) {
	c := New()
	for i := 0; i < 5; i++ {
		for _, tenant := range []string{"alice", "bob"} {
			name := fmt.Sprintf("%s-%d", tenant, i)
			if err := c.SubmitJob(tenantFidelityJob(name, tenant, 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := c.PendingJobsCapped(2)
	if len(got) != 4 {
		t.Fatalf("capped snapshot has %d jobs, want 4: %+v", len(got), got)
	}
	want := []string{"alice-0", "bob-0", "alice-1", "bob-1"}
	for i, j := range got {
		if j.Name != want[i] {
			t.Fatalf("capped FIFO broken at %d: got %s, want %s", i, j.Name, want[i])
		}
	}
	// No cap (or a cap above the backlog) must match PendingJobs exactly.
	if full := c.PendingJobsCapped(0); len(full) != 10 {
		t.Fatalf("uncapped snapshot has %d jobs, want 10", len(full))
	}
	if full := c.PendingJobsCapped(100); len(full) != 10 {
		t.Fatalf("over-capped snapshot has %d jobs, want 10", len(full))
	}
}

// TestSubmitJobEnforcesQuota pins the choke-point property: the quota
// policy is enforced by SubmitJob itself, so submission surfaces that
// bypass the gateway (master REST, raw cluster API, visualizer) cannot
// route around admission control.
func TestSubmitJobEnforcesQuota(t *testing.T) {
	c := New()
	c.Quotas = api.TenantQuotaPolicy{Default: api.TenantQuota{MaxPending: 2}}
	for i := 0; i < 2; i++ {
		if err := c.SubmitJob(tenantFidelityJob(fmt.Sprintf("ok-%d", i), "alice", 1)); err != nil {
			t.Fatalf("submit %d under quota: %v", i, err)
		}
	}
	err := c.SubmitJob(tenantFidelityJob("over", "alice", 1))
	var quotaErr *QuotaExceededError
	if !errors.As(err, &quotaErr) || quotaErr.Limit != "pending" {
		t.Fatalf("over-quota submit: %v", err)
	}
	if status, code := quotaErr.HTTPStatus(); status != 429 || code != "quota_exceeded" {
		t.Fatalf("quota error maps to %d/%s", status, code)
	}
	// Other tenants are unaffected; draining re-admits.
	if err := c.SubmitJob(tenantFidelityJob("b-ok", "bob", 1)); err != nil {
		t.Fatalf("bob blocked by alice quota: %v", err)
	}
	if _, err := c.CancelJob("ok-0"); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitJob(tenantFidelityJob("over", "alice", 1)); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// scheduledJob submits a job with classical resources and binds it to the
// named node, returning the reserved amounts for accounting assertions.
func scheduledJob(t *testing.T, c *Cluster, name, node string) api.ResourceRequirements {
	t.Helper()
	res := api.ResourceRequirements{CPUMillis: 1000, MemoryMB: 512}
	j := fidelityJob(name)
	j.Spec.Resources = res
	if err := c.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	if err := c.BindJob(name, node, 0.5); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReleaseNodeAfterArchival is the accounting-leak regression: a job
// whose release races the retention sweep (terminal, swept to the archive,
// THEN released) must still give back its CPU/memory reservation via the
// archive tier — not just its container slot.
func TestReleaseNodeAfterArchival(t *testing.T) {
	c := New()
	c.AddNode(testBackend(t, "dev-a"))
	scheduledJob(t, c, "j1", "dev-a")

	// The kubelet finishes the job but crashes before its release; the
	// sweep then moves the terminal job to the archive.
	finished := time.Now().Add(-time.Hour)
	if _, _, err := c.Jobs.Update("j1", func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = api.JobSucceeded
		j.Status.FinishedAt = &finished
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := c.ArchiveTerminal(time.Now(), RetentionPolicy{MaxTerminalAge: time.Minute}); n != 1 {
		t.Fatalf("archived %d, want 1", n)
	}
	if _, _, err := c.Jobs.Get("j1"); err == nil {
		t.Fatal("j1 still resident after sweep")
	}

	if err := c.ReleaseNode("dev-a", "j1"); err != nil {
		t.Fatal(err)
	}
	n, _, err := c.Nodes.Get("dev-a")
	if err != nil {
		t.Fatal(err)
	}
	if n.Status.CPUMillisInUse != 0 || n.Status.MemoryMBInUse != 0 {
		t.Fatalf("release after archival leaked accounting: %dm CPU, %dMB memory still in use",
			n.Status.CPUMillisInUse, n.Status.MemoryMBInUse)
	}
	if len(n.Status.RunningJobs) != 0 {
		t.Fatalf("slot not released: %v", n.Status.RunningJobs)
	}
}

// TestReleaseNodeSurfacesNodeError: a release racing a node deregistration
// must report the failure instead of vanishing.
func TestReleaseNodeSurfacesNodeError(t *testing.T) {
	c := New()
	if err := c.ReleaseNode("ghost-node", "j1"); err == nil {
		t.Fatal("release against a missing node reported success")
	}
}

// TestCancelLatchesFailedRelease: cancelling a scheduled job whose node
// deregistered mid-flight still cancels the job, and the unreleasable
// reservation is latched as a ReleaseFailed event plus the
// qrio_state_release_failures_total counter.
func TestCancelLatchesFailedRelease(t *testing.T) {
	c := New()
	c.Metrics = NewMetrics(obs.NewRegistry())
	c.AddNode(testBackend(t, "dev-a"))
	scheduledJob(t, c, "j1", "dev-a")
	if err := c.Nodes.Delete("dev-a"); err != nil {
		t.Fatal(err)
	}

	updated, err := c.CancelJob("j1")
	if err != nil {
		t.Fatal(err)
	}
	if updated.Status.Phase != api.JobCancelled {
		t.Fatalf("phase = %s", updated.Status.Phase)
	}
	if got := c.Metrics.ReleaseFailures.Value(); got != 1 {
		t.Fatalf("release failures counter = %d, want 1", got)
	}
	found := false
	for _, ev := range c.EventsAbout("j1") {
		if ev.Reason == "ReleaseFailed" {
			found = true
		}
	}
	if !found {
		t.Fatal("no ReleaseFailed event recorded")
	}
}

// TestBindJobAtConflicts pins the optimistic-concurrency contract: a bind
// at the observed version wins; a bind at a stale version loses with a
// typed ConflictError and leaves no node reservation behind.
func TestBindJobAtConflicts(t *testing.T) {
	c := New()
	c.AddNode(testBackend(t, "dev-a"))
	c.AddNode(testBackend(t, "dev-b"))
	j := fidelityJob("j1")
	j.Spec.Resources = api.ResourceRequirements{CPUMillis: 1000, MemoryMB: 512}
	if err := c.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	pend := c.PendingJobsVersioned(0)
	if len(pend) != 1 || pend[0].Job.Name != "j1" || pend[0].Version <= 0 {
		t.Fatalf("PendingJobsVersioned = %+v", pend)
	}
	v := pend[0].Version

	if err := c.BindJobAt("j1", "dev-a", 0.5, v); err != nil {
		t.Fatalf("bind at observed version failed: %v", err)
	}
	// A second replica still holding the pre-bind observation must lose
	// with the typed conflict — and learn on the fast path (the job is no
	// longer pending, but the version check fires first).
	err := c.BindJobAt("j1", "dev-b", 0.5, v)
	if !IsConflict(err) {
		t.Fatalf("stale bind error = %v, want ConflictError", err)
	}
	var conflict ConflictError
	if errors.As(err, &conflict); conflict.Job != "j1" || conflict.Observed != v {
		t.Fatalf("conflict detail = %+v", conflict)
	}
	// The loser must not have reserved anything on its node.
	nb, _, _ := c.Nodes.Get("dev-b")
	if nb.Status.CPUMillisInUse != 0 || len(nb.Status.RunningJobs) != 0 {
		t.Fatalf("losing bind reserved on dev-b: %+v", nb.Status)
	}
	// And the winner's bind stands untouched.
	got, _, _ := c.Jobs.Get("j1")
	if got.Status.Phase != api.JobScheduled || got.Status.Node != "dev-a" {
		t.Fatalf("winner's bind disturbed: %+v", got.Status)
	}
}

// TestBindJobAtExactlyOneWinner races replicas binding one job at the same
// observed version toward different nodes: exactly one bind commits, every
// loser sees ConflictError, and node accounting reflects one reservation.
func TestBindJobAtExactlyOneWinner(t *testing.T) {
	c := New()
	nodes := make([]string, 4)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("dev-%d", i)
		c.AddNode(testBackend(t, nodes[i]))
	}
	j := fidelityJob("j1")
	j.Spec.Resources = api.ResourceRequirements{CPUMillis: 500, MemoryMB: 256}
	if err := c.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	_, v, err := c.Jobs.Get("j1")
	if err != nil {
		t.Fatal(err)
	}

	var wins, conflicts atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := c.BindJobAt("j1", nodes[i%len(nodes)], 0.5, v)
			switch {
			case err == nil:
				wins.Add(1)
			case IsConflict(err):
				conflicts.Add(1)
			default:
				t.Errorf("racing bind got non-conflict error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d binds won, want exactly 1 (%d conflicts)", wins.Load(), conflicts.Load())
	}
	// Exactly one node carries the reservation.
	reserved := 0
	for _, name := range nodes {
		n, _, _ := c.Nodes.Get(name)
		if len(n.Status.RunningJobs) > 0 {
			reserved++
		}
	}
	if reserved != 1 {
		t.Fatalf("%d nodes hold reservations, want 1", reserved)
	}
}
