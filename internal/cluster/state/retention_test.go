package state

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/store"
)

// finishedJob builds a terminal job with an explicit FinishedAt.
func finishedJob(name string, phase api.JobPhase, finished time.Time) api.QuantumJob {
	j := fidelityJob(name)
	j.CreatedAt = finished.Add(-time.Second)
	j.Status = api.JobStatus{Phase: phase, FinishedAt: &finished}
	return j
}

// TestArchiveTerminalByAge: jobs past MaxTerminalAge move to the archive
// with their event trails; younger terminal jobs and live jobs stay.
func TestArchiveTerminalByAge(t *testing.T) {
	c := New()
	now := time.Now()
	for i := 0; i < 4; i++ {
		j := finishedJob(fmt.Sprintf("old-%d", i), api.JobSucceeded, now.Add(-time.Hour))
		if _, err := c.Jobs.Create(j); err != nil {
			t.Fatal(err)
		}
		c.RecordEvent("Job", j.Name, "Succeeded", "done long ago")
	}
	young := finishedJob("young", api.JobFailed, now.Add(-time.Second))
	if _, err := c.Jobs.Create(young); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitJob(fidelityJob("live")); err != nil {
		t.Fatal(err)
	}

	n := c.ArchiveTerminal(now, RetentionPolicy{MaxTerminalAge: time.Minute})
	if n != 4 {
		t.Fatalf("archived %d, want 4", n)
	}
	if c.Archived.Len() != 4 {
		t.Fatalf("archive holds %d", c.Archived.Len())
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("old-%d", i)
		if _, _, err := c.Jobs.Get(name); err == nil {
			t.Fatalf("%s still resident", name)
		}
		entry, ok := c.Archived.Get(name)
		if !ok {
			t.Fatalf("%s not archived", name)
		}
		if len(entry.Events) == 0 || entry.Events[0].Reason != "Succeeded" {
			t.Fatalf("%s archived without its event trail: %+v", name, entry.Events)
		}
		// The hot event store no longer holds the archived trail.
		if left := c.EventsAbout(name); len(left) != 0 {
			t.Fatalf("%s left %d events in the hot store", name, len(left))
		}
	}
	if _, _, err := c.Jobs.Get("young"); err != nil {
		t.Fatal("young terminal job was archived early")
	}
	if _, _, err := c.Jobs.Get("live"); err != nil {
		t.Fatal("live job disturbed")
	}
	if c.TerminalCount() != 1 {
		t.Fatalf("terminal index reports %d, want 1", c.TerminalCount())
	}
}

// TestArchiveTerminalRetiresResults: the sweep carries a job's execution
// record (logs included) into its archive entry and evicts it from the
// hot Results store, while ResultFor keeps the logs readable from either
// tier.
func TestArchiveTerminalRetiresResults(t *testing.T) {
	c := New()
	now := time.Now()
	j := finishedJob("done", api.JobSucceeded, now.Add(-time.Hour))
	if _, err := c.Jobs.Create(j); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Results.Create(api.Result{
		ObjectMeta: api.ObjectMeta{Name: "done"},
		JobName:    "done",
		LogLines:   []string{"[qrio] executed", "[qrio] fidelity 0.97"},
		Fidelity:   0.97,
	}); err != nil {
		t.Fatal(err)
	}
	// A result-less terminal job archives cleanly too.
	if _, err := c.Jobs.Create(finishedJob("no-result", api.JobFailed, now.Add(-time.Hour))); err != nil {
		t.Fatal(err)
	}

	if got, ok := c.ResultFor("done"); !ok || got.Fidelity != 0.97 {
		t.Fatalf("hot-tier ResultFor = %+v, %v", got, ok)
	}
	if n := c.ArchiveTerminal(now, RetentionPolicy{MaxTerminalAge: time.Minute}); n != 2 {
		t.Fatalf("archived %d, want 2", n)
	}
	// The hot store no longer holds the archived job's logs…
	if _, _, err := c.Results.Get("done"); err == nil {
		t.Fatal("archived job's result still resident in the hot store")
	}
	// …but the archive entry does, and ResultFor falls through to it.
	entry, ok := c.Archived.Get("done")
	if !ok || entry.Result == nil {
		t.Fatalf("archive entry missing retired result: %+v", entry)
	}
	if len(entry.Result.LogLines) != 2 || entry.Result.Fidelity != 0.97 {
		t.Fatalf("retired result corrupted: %+v", entry.Result)
	}
	got, ok := c.ResultFor("done")
	if !ok || got.Fidelity != 0.97 || len(got.LogLines) != 2 {
		t.Fatalf("archived-tier ResultFor = %+v, %v", got, ok)
	}
	if noRes, ok := c.Archived.Get("no-result"); !ok || noRes.Result != nil {
		t.Fatalf("result-less entry grew a result: %+v", noRes.Result)
	}
	if _, ok := c.ResultFor("no-result"); ok {
		t.Fatal("ResultFor invented a result for a job that never had one")
	}
}

// TestArchiveTerminalByCount keeps the newest MaxTerminalCount terminal
// jobs resident and archives the oldest overflow.
func TestArchiveTerminalByCount(t *testing.T) {
	c := New()
	now := time.Now()
	for i := 0; i < 10; i++ {
		j := finishedJob(fmt.Sprintf("t-%02d", i), api.JobSucceeded, now.Add(time.Duration(i)*time.Second))
		if _, err := c.Jobs.Create(j); err != nil {
			t.Fatal(err)
		}
	}
	n := c.ArchiveTerminal(now.Add(time.Hour), RetentionPolicy{MaxTerminalCount: 3})
	if n != 7 {
		t.Fatalf("archived %d, want 7", n)
	}
	for i := 0; i < 7; i++ {
		if !c.Archived.Has(fmt.Sprintf("t-%02d", i)) {
			t.Fatalf("t-%02d (old) not archived", i)
		}
	}
	for i := 7; i < 10; i++ {
		if _, _, err := c.Jobs.Get(fmt.Sprintf("t-%02d", i)); err != nil {
			t.Fatalf("t-%02d (newest) evicted", i)
		}
	}
	// Idempotent: a second sweep at the cap archives nothing.
	if n := c.ArchiveTerminal(now.Add(time.Hour), RetentionPolicy{MaxTerminalCount: 3}); n != 0 {
		t.Fatalf("second sweep archived %d", n)
	}
}

// TestArchiveDisabledPolicy pins the default: the zero policy never
// archives — today's keep-everything behaviour.
func TestArchiveDisabledPolicy(t *testing.T) {
	c := New()
	j := finishedJob("done", api.JobSucceeded, time.Now().Add(-24*time.Hour))
	if _, err := c.Jobs.Create(j); err != nil {
		t.Fatal(err)
	}
	if n := c.ArchiveTerminal(time.Now(), RetentionPolicy{}); n != 0 {
		t.Fatalf("zero policy archived %d jobs", n)
	}
	if _, _, err := c.Jobs.Get("done"); err != nil {
		t.Fatal("job left the hot store under the zero policy")
	}
}

// TestCancelArchivedJobConflict is the regression pin for the
// cancel-vs-sweep race: cancelling a job the sweep has archived must
// return the same typed terminal conflict a resident finished job gets —
// and must NOT resurrect the job in either tier.
func TestCancelArchivedJobConflict(t *testing.T) {
	c := New()
	now := time.Now()
	j := finishedJob("done", api.JobSucceeded, now.Add(-time.Hour))
	if _, err := c.Jobs.Create(j); err != nil {
		t.Fatal(err)
	}
	if n := c.ArchiveTerminal(now, RetentionPolicy{MaxTerminalAge: time.Minute}); n != 1 {
		t.Fatalf("archived %d, want 1", n)
	}
	_, err := c.CancelJob("done")
	var terminal TerminalJobError
	if !errors.As(err, &terminal) {
		t.Fatalf("cancel archived job err = %v, want TerminalJobError", err)
	}
	if terminal.Phase != api.JobSucceeded {
		t.Fatalf("conflict reports phase %s", terminal.Phase)
	}
	if status, code := terminal.HTTPStatus(); status != 409 || code != "conflict" {
		t.Fatalf("conflict maps to (%d, %s)", status, code)
	}
	if _, _, err := c.Jobs.Get("done"); err == nil {
		t.Fatal("cancel resurrected the archived job in the hot store")
	}
	entry, ok := c.Archived.Get("done")
	if !ok || entry.Job.Status.Phase != api.JobSucceeded {
		t.Fatalf("archive entry disturbed: %+v %v", entry, ok)
	}
	// A genuinely unknown name still reads as not-found.
	var nf store.ErrNotFound
	if _, err := c.CancelJob("ghost"); !errors.As(err, &nf) {
		t.Fatalf("cancel unknown job err = %v, want ErrNotFound", err)
	}
}

// TestArchiveSweepLosesToConcurrentChange: if the job changes between the
// sweep's read and its conditional delete, the delete aborts and the
// archive copy rolls back — the hot object stays authoritative.
func TestArchiveSweepLosesToConcurrentChange(t *testing.T) {
	c := New()
	now := time.Now()
	j := finishedJob("flappy", api.JobFailed, now.Add(-time.Hour))
	if _, err := c.Jobs.Create(j); err != nil {
		t.Fatal(err)
	}
	// Simulate the controller's retry landing mid-sweep: bump the object
	// version after the sweep would have read it. We interleave by hand —
	// read what the sweep reads, mutate, then sweep.
	if _, _, err := c.Jobs.Update("flappy", func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = api.JobPending // retry resurrects it
		j.Status.FinishedAt = nil
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := c.ArchiveTerminal(now, RetentionPolicy{MaxTerminalAge: time.Minute}); n != 0 {
		t.Fatalf("sweep archived a resurrected job (%d)", n)
	}
	if c.Archived.Has("flappy") {
		t.Fatal("archive kept a copy of a live job")
	}
	if got, _, err := c.Jobs.Get("flappy"); err != nil || got.Status.Phase != api.JobPending {
		t.Fatalf("hot object disturbed: %+v %v", got.Status, err)
	}
}

// TestSubmitRejectsArchivedName: names stay unique across tiers.
func TestSubmitRejectsArchivedName(t *testing.T) {
	c := New()
	now := time.Now()
	if _, err := c.Jobs.Create(finishedJob("taken", api.JobSucceeded, now.Add(-time.Hour))); err != nil {
		t.Fatal(err)
	}
	c.ArchiveTerminal(now, RetentionPolicy{MaxTerminalAge: time.Minute})
	err := c.SubmitJob(fidelityJob("taken"))
	var exists store.ErrExists
	if !errors.As(err, &exists) {
		t.Fatalf("submit over archived name err = %v, want ErrExists", err)
	}
}

// TestArchiveKeepsUsageAndPendingClean: archiving terminal jobs leaves
// the pending index and tenant usage untouched (terminal jobs were
// already out of both), and no archived key is ever referenced.
func TestArchiveKeepsUsageAndPendingClean(t *testing.T) {
	c := New()
	now := time.Now()
	for i := 0; i < 5; i++ {
		j := finishedJob(fmt.Sprintf("done-%d", i), api.JobSucceeded, now.Add(-time.Hour))
		j.Spec.Tenant = "alice"
		if _, err := c.Jobs.Create(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SubmitJob(fidelityJob("queued")); err != nil {
		t.Fatal(err)
	}
	c.ArchiveTerminal(now, RetentionPolicy{MaxTerminalAge: time.Minute})
	if got := c.TenantUsage("alice"); got.Pending != 0 || got.Active != 0 || got.QubitSeconds != 0 {
		t.Fatalf("alice usage after archival = %+v, want zero", got)
	}
	pending := c.PendingJobs()
	if len(pending) != 1 || pending[0].Name != "queued" {
		t.Fatalf("pending after archival = %v", pending)
	}
	for _, p := range pending {
		if c.Archived.Has(p.Name) {
			t.Fatalf("pending index references archived key %s", p.Name)
		}
	}
}

// TestHotStoreFlatUnderRetention is the acceptance guard at state level:
// after tens of thousands of terminal jobs flow through under an active
// retention policy, the hot store and the pending-path cost stay flat.
func TestHotStoreFlatUnderRetention(t *testing.T) {
	c := New()
	policy := RetentionPolicy{MaxTerminalCount: 100}
	now := time.Now()
	const total = 50000
	for i := 0; i < total; i++ {
		j := finishedJob(fmt.Sprintf("churn-%05d", i), api.JobSucceeded, now.Add(time.Duration(i)*time.Millisecond))
		if _, err := c.Jobs.Create(j); err != nil {
			t.Fatal(err)
		}
		if i%1000 == 999 {
			c.ArchiveTerminal(now.Add(time.Hour), policy)
		}
	}
	c.ArchiveTerminal(now.Add(time.Hour), policy)
	if resident := c.Jobs.Len(); resident > policy.MaxTerminalCount {
		t.Fatalf("hot store holds %d jobs, want ≤ %d", resident, policy.MaxTerminalCount)
	}
	if c.Archived.Len() != total-policy.MaxTerminalCount {
		t.Fatalf("archive holds %d, want %d", c.Archived.Len(), total-policy.MaxTerminalCount)
	}
	// The scheduler's hot path must not scale with archived history.
	for i := 0; i < 4; i++ {
		if err := c.SubmitJob(fidelityJob(fmt.Sprintf("live-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if got := len(c.PendingJobs()); got != 4 {
			t.Fatalf("PendingJobs = %d", got)
		}
	})
	if allocs > 160 {
		t.Fatalf("PendingJobs did %.0f allocs with 50k archived jobs — scaling with history", allocs)
	}
}
