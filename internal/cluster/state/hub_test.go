package state

import (
	"errors"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/store"
)

// collect drains notifications until pred is satisfied or the timeout
// elapses, returning everything seen.
func collect(t *testing.T, ch <-chan Notification, pred func([]Notification) bool) []Notification {
	t.Helper()
	var seen []Notification
	deadline := time.After(5 * time.Second)
	for {
		if pred(seen) {
			return seen
		}
		select {
		case n, ok := <-ch:
			if !ok {
				t.Fatalf("hub closed early; saw %d notifications", len(seen))
			}
			seen = append(seen, n)
		case <-deadline:
			t.Fatalf("timed out; saw %+v", seen)
		}
	}
}

func TestSubscribeMergesJobAndNodeStreams(t *testing.T) {
	c := New()
	if _, err := c.AddNode(testBackend(t, "hub-node")); err != nil {
		t.Fatal(err)
	}
	sub, cancel := c.Subscribe(32)
	defer cancel()

	if err := c.SubmitJob(fidelityJob("hub-job")); err != nil {
		t.Fatal(err)
	}
	c.Nodes.Update("hub-node", func(n api.Node) (api.Node, error) {
		n.Status.LastHeartbeat = time.Now()
		return n, nil
	})

	seen := collect(t, sub, func(ns []Notification) bool {
		job, node := false, false
		for _, n := range ns {
			job = job || (n.Kind == KindJob && n.Job != nil && n.Job.Name == "hub-job" && n.Type == store.Added)
			node = node || (n.Kind == KindNode && n.Node != nil && n.Node.Name == "hub-node" && n.Type == store.Modified)
		}
		return job && node
	})
	for _, n := range seen {
		if (n.Kind == KindJob) != (n.Job != nil) || (n.Kind == KindNode) != (n.Node != nil) {
			t.Fatalf("notification kind/payload mismatch: %+v", n)
		}
	}

	// Cancel closes the stream (idempotently).
	cancel()
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream never closed after cancel")
		}
	}
}

func TestCancelJobLifecycle(t *testing.T) {
	c := New()
	if _, err := c.AddNode(testBackend(t, "n1")); err != nil {
		t.Fatal(err)
	}

	// Pending → Cancelled directly.
	if err := c.SubmitJob(fidelityJob("pending-job")); err != nil {
		t.Fatal(err)
	}
	j, err := c.CancelJob("pending-job")
	if err != nil || j.Status.Phase != api.JobCancelled {
		t.Fatalf("cancel pending: %+v, %v", j.Status, err)
	}
	if j.Status.FinishedAt == nil {
		t.Fatal("cancelled job has no FinishedAt")
	}

	// Scheduled → Cancelled, slot released.
	if err := c.SubmitJob(fidelityJob("sched-job")); err != nil {
		t.Fatal(err)
	}
	if err := c.BindJob("sched-job", "n1", 0.5); err != nil {
		t.Fatal(err)
	}
	if j, err = c.CancelJob("sched-job"); err != nil || j.Status.Phase != api.JobCancelled {
		t.Fatalf("cancel scheduled: %+v, %v", j.Status, err)
	}
	n, _, _ := c.Nodes.Get("n1")
	if len(n.Status.RunningJobs) != 0 {
		t.Fatalf("slot not released: %v", n.Status.RunningJobs)
	}

	// Running → CancelRequested flag, phase unchanged until the kubelet
	// aborts.
	if err := c.SubmitJob(fidelityJob("run-job")); err != nil {
		t.Fatal(err)
	}
	if err := c.BindJob("run-job", "n1", 0.5); err != nil {
		t.Fatal(err)
	}
	c.Jobs.Update("run-job", func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = api.JobRunning
		return j, nil
	})
	if j, err = c.CancelJob("run-job"); err != nil {
		t.Fatal(err)
	}
	if j.Status.Phase != api.JobRunning || !j.Status.CancelRequested {
		t.Fatalf("cancel running: %+v", j.Status)
	}

	// Terminal → TerminalJobError (the 409 conflict case).
	if _, err = c.CancelJob("pending-job"); err == nil {
		t.Fatal("cancelling a cancelled job succeeded")
	}
	var terminal TerminalJobError
	if !errors.As(err, &terminal) || terminal.Phase != api.JobCancelled {
		t.Fatalf("wrong error type: %v", err)
	}

	// Unknown job → store.ErrNotFound (the 404 case).
	_, err = c.CancelJob("ghost")
	var notFound store.ErrNotFound
	if !errors.As(err, &notFound) {
		t.Fatalf("wrong error for unknown job: %v", err)
	}
}
