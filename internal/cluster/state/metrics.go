package state

import "qrio/internal/obs"

// Metrics is the state layer's instrumentation handle: the hot-path
// counters and histograms the cluster bumps as jobs move. A nil handle
// (the default — every call site guards) costs one predictable branch,
// so clusters built without a registry (benches, the paper experiments)
// pay nothing. Depth gauges (pending/active/terminal/archived) are NOT
// here: they are cheap instantaneous reads, sampled at scrape time by
// the core wiring's OnGather hook instead of updated per event.
type Metrics struct {
	// SubmitToBind observes CreatedAt→bind latency at every successful
	// BindJob — the queueing delay a tenant actually experiences.
	SubmitToBind *obs.Histogram
	// TenantBinds counts successful binds per tenant: the fair-share
	// outcome the weighted scheduler is supposed to converge.
	TenantBinds *obs.CounterVec
	// QuotaRejections counts quota-rejected submissions per tripped
	// limit ("pending", "active", "qubit-seconds"). CheckTenantQuota is
	// the single counting point: the gateway's admission layer rejects
	// before SubmitJob re-checks, so each rejected submission counts
	// exactly once on whichever surface it arrived through.
	QuotaRejections *obs.CounterVec
	// WatchResumes counts resume attempts by outcome: "replayed" (the
	// journal still covered the token) or "compacted" (the client gets
	// 410 and falls back to a fresh watch).
	WatchResumes *obs.CounterVec
	// ReleaseFailures counts node releases that could not land (node
	// deregistered mid-release) — each one is a reservation that stays
	// orphaned until the node re-registers, so a nonzero rate is an
	// operator signal, not noise.
	ReleaseFailures *obs.Counter
}

// NewMetrics registers the state layer's families on a registry.
func NewMetrics(r *obs.Registry) *Metrics {
	// Submit→bind spans milliseconds (idle fleet) to many seconds (deep
	// backlog); the default latency buckets cover exactly that range.
	return &Metrics{
		SubmitToBind: r.Histogram("qrio_state_submit_to_bind_seconds",
			"Latency from job submission to its bind to a node.", nil).With(),
		TenantBinds: r.Counter("qrio_state_tenant_binds_total",
			"Jobs bound to nodes, per tenant.", "tenant"),
		QuotaRejections: r.Counter("qrio_state_quota_rejections_total",
			"Submissions rejected by tenant quota, per tripped limit.", "limit"),
		WatchResumes: r.Counter("qrio_watch_resume_total",
			"Watch resume attempts by outcome (replayed or compacted).", "outcome"),
		ReleaseFailures: r.Counter("qrio_state_release_failures_total",
			"Node releases that failed and left a reservation orphaned.").With(),
	}
}
