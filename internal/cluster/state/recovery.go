package state

import (
	"encoding/json"
	"fmt"

	"qrio/internal/cluster/api"
	"qrio/internal/device"
)

// RefreshNode re-registers a backend over a node replayed from durable
// state: spec and labels follow the current configuration (flags are
// authoritative for hardware description), the node returns to Ready with
// a fresh heartbeat, while its identity (UID, CreatedAt) and any surviving
// slot reservations are preserved. MaxContainers is reset so the caller's
// slot policy reapplies cleanly.
func (c *Cluster) RefreshNode(b *device.Backend) (api.Node, error) {
	if err := b.Validate(); err != nil {
		return api.Node{}, fmt.Errorf("state: refusing invalid backend: %w", err)
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return api.Node{}, err
	}
	n, _, err := c.Nodes.Update(b.Name, func(n api.Node) (api.Node, error) {
		n.Labels = NodeLabels(b)
		n.Spec.BackendJSON = raw
		n.Spec.CPUMillis = b.CPUMillis
		n.Spec.MemoryMB = b.MemoryMB
		n.Spec.MaxContainers = 0
		n.Status.Phase = api.NodeReady
		n.Status.LastHeartbeat = c.now()
		return n, nil
	})
	if err != nil {
		return api.Node{}, err
	}
	c.mu.Lock()
	delete(c.backendCache, b.Name)
	c.mu.Unlock()
	return n, nil
}

// EnsureUIDFloor raises the UID counter to at least n. The durability
// layer calls it after replay with the highest numeric suffix seen among
// restored UIDs, so a restarted process never re-mints a UID the previous
// process already handed out.
func (c *Cluster) EnsureUIDFloor(n int64) {
	for {
		cur := c.uid.Load()
		if cur >= n || c.uid.CompareAndSwap(cur, n) {
			return
		}
	}
}

// RequeueUnclaimedScheduled returns every Scheduled job to the queue —
// the graceful-drain counterpart of RequeueOrphanedRunning. On drain the
// kubelets have exited: a job bound to a node but never claimed by its
// kubelet would otherwise sit Scheduled forever. Returning it to Pending
// (and releasing its slot) makes the bind re-run on the next start, so a
// drained restart loses no accepted work. Returns how many jobs moved.
func (c *Cluster) RequeueUnclaimedScheduled(reason string) int {
	var names []string
	c.Jobs.Range(func(j api.QuantumJob, _ int64) bool {
		if j.Status.Phase == api.JobScheduled {
			names = append(names, j.Name)
		}
		return true
	})
	n := 0
	for _, name := range names {
		node := ""
		_, _, err := c.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
			node = ""
			if j.Status.Phase != api.JobScheduled {
				return j, TerminalJobError{Job: name, Phase: j.Status.Phase}
			}
			node = j.Status.Node
			j.Status.Phase = api.JobPending
			j.Status.Node = ""
			j.Status.Message = reason
			return j, nil
		})
		if err != nil {
			continue
		}
		if node != "" {
			if rerr := c.ReleaseNode(node, name); rerr != nil {
				c.LatchReleaseFailure(node, name, rerr)
			}
		}
		c.RecordEvent("Job", name, "Requeued", reason)
		n++
	}
	return n
}

// RequeueOrphanedRunning returns every Running job to the queue (or
// completes its cancellation) — the boot-time recovery step. A replayed
// Running job has no live container behind it: the process that owned the
// container died with the crash. Returns how many jobs were transitioned.
// Called after WAL sinks attach, so the transitions themselves are logged
// and a crash during recovery recovers correctly the second time.
func (c *Cluster) RequeueOrphanedRunning(reason string) int {
	var names []string
	c.Jobs.Range(func(j api.QuantumJob, _ int64) bool {
		if j.Status.Phase == api.JobRunning {
			names = append(names, j.Name)
		}
		return true
	})
	n := 0
	for _, name := range names {
		node := ""
		cancelled := false
		_, _, err := c.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
			node, cancelled = "", false
			if j.Status.Phase != api.JobRunning {
				return j, TerminalJobError{Job: name, Phase: j.Status.Phase}
			}
			node = j.Status.Node
			if j.Status.CancelRequested {
				// The container the user wanted aborted died with the old
				// process — the cancellation is complete, not lost.
				cancelled = true
				now := c.now()
				j.Status.Phase = api.JobCancelled
				j.Status.Node = ""
				j.Status.FinishedAt = &now
				j.Status.Message = reason + "; cancellation completed by restart"
				return j, nil
			}
			j.Status.Phase = api.JobPending
			j.Status.Node = ""
			j.Status.StartedAt = nil
			j.Status.Message = reason
			return j, nil
		})
		if err != nil {
			continue
		}
		if node != "" {
			if rerr := c.ReleaseNode(node, name); rerr != nil {
				c.LatchReleaseFailure(node, name, rerr)
			}
		}
		if cancelled {
			c.RecordEvent("Job", name, "Cancelled", reason+"; cancellation completed by restart")
		} else {
			c.RecordEvent("Job", name, "Requeued", reason)
		}
		n++
	}
	return n
}
