package state

import (
	"sort"
	"sync"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/store"
)

// scheduledIndex maintains, per node, the set of jobs currently bound to
// it in the Scheduled phase. Kubelets poll this set every launch tick;
// before the index that poll walked every job in the cluster, so a large
// backlog taxed every node. Fed by a store hook (and therefore rebuilt
// automatically by WAL replay).
type scheduledIndex struct {
	mu     sync.Mutex
	byNode map[string]map[string]api.QuantumJob // node → job name → job
	node   map[string]string                    // job name → node (reverse)
}

func (x *scheduledIndex) onJobEvent(ev store.WatchEvent[api.QuantumJob]) {
	j := ev.Object
	x.mu.Lock()
	defer x.mu.Unlock()
	if prev, ok := x.node[j.Name]; ok {
		delete(x.byNode[prev], j.Name)
		if len(x.byNode[prev]) == 0 {
			delete(x.byNode, prev)
		}
		delete(x.node, j.Name)
	}
	if ev.Type == store.Deleted || j.Status.Phase != api.JobScheduled || j.Status.Node == "" {
		return
	}
	m := x.byNode[j.Status.Node]
	if m == nil {
		m = make(map[string]api.QuantumJob)
		x.byNode[j.Status.Node] = m
	}
	m[j.Name] = j // the hook's private copy; retained, never mutated
	x.node[j.Name] = j.Status.Node
}

// ScheduledJobs returns deep copies of the jobs currently Scheduled onto
// one node, oldest first (ties broken by name) — the launch order kubelets
// want. O(jobs on this node), not O(jobs in the cluster).
func (c *Cluster) ScheduledJobs(node string) []api.QuantumJob {
	c.scheduled.mu.Lock()
	m := c.scheduled.byNode[node]
	out := make([]api.QuantumJob, 0, len(m))
	for _, j := range m {
		out = append(out, j.DeepCopy())
	}
	c.scheduled.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if !out[a].CreatedAt.Equal(out[b].CreatedAt) {
			return out[a].CreatedAt.Before(out[b].CreatedAt)
		}
		return out[a].Name < out[b].Name
	})
	return out
}
