package state

import (
	"errors"
	"testing"

	"qrio/internal/cluster/api"
	"qrio/internal/httpx"
)

func TestSetTenantConfigUpsert(t *testing.T) {
	c := New()
	created, err := c.SetTenantConfig(api.TenantConfig{
		ObjectMeta: api.ObjectMeta{Name: "alice"},
		Weight:     4,
		Quota:      api.TenantQuota{MaxPending: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if created.UID == "" {
		t.Fatal("created override has no UID")
	}
	if w, ok := c.TenantWeight("alice"); !ok || w != 4 {
		t.Fatalf("weight = %d %v", w, ok)
	}
	if q := c.QuotaFor("alice"); q.MaxPending != 10 {
		t.Fatalf("quota = %+v", q)
	}

	// Update path: same identity, new values, weight+quota atomic.
	updated, err := c.SetTenantConfig(api.TenantConfig{
		ObjectMeta: api.ObjectMeta{Name: "alice"},
		Weight:     9,
		Quota:      api.TenantQuota{MaxActive: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if updated.UID != created.UID {
		t.Fatalf("update re-minted identity: %s vs %s", updated.UID, created.UID)
	}
	if w, _ := c.TenantWeight("alice"); w != 9 {
		t.Fatalf("weight after update = %d", w)
	}
	if q := c.QuotaFor("alice"); q.MaxPending != 0 || q.MaxActive != 2 {
		t.Fatalf("quota not fully replaced: %+v", q)
	}
	if got := c.TenantConfigList(); len(got) != 1 {
		t.Fatalf("list = %d entries", len(got))
	}
}

func TestSetTenantConfigValidation(t *testing.T) {
	c := New()
	cases := []api.TenantConfig{
		{ObjectMeta: api.ObjectMeta{Name: "Bad Name!"}},
		{ObjectMeta: api.ObjectMeta{Name: "ok"}, Weight: -1},
		{ObjectMeta: api.ObjectMeta{Name: "ok"}, Weight: api.MaxTenantWeight + 1},
		{ObjectMeta: api.ObjectMeta{Name: "ok"}, Quota: api.TenantQuota{MaxPending: -1}},
		{ObjectMeta: api.ObjectMeta{Name: "ok"}, Quota: api.TenantQuota{MaxActive: -1}},
		{ObjectMeta: api.ObjectMeta{Name: "ok"}, Quota: api.TenantQuota{MaxQubitSeconds: -0.5}},
	}
	for i, cfg := range cases {
		_, err := c.SetTenantConfig(cfg)
		if err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
		var invalid *InvalidTenantConfigError
		if !errors.As(err, &invalid) {
			t.Fatalf("case %d: error %T is not InvalidTenantConfigError", i, err)
		}
		var sc httpx.StatusCoder
		if !errors.As(err, &sc) {
			t.Fatalf("case %d: no HTTPStatus", i)
		}
		if status, code := sc.HTTPStatus(); status != 422 || code != "invalid" {
			t.Fatalf("case %d: status %d/%s, want 422/invalid", i, status, code)
		}
	}
	if got := c.TenantConfigList(); len(got) != 0 {
		t.Fatalf("rejected configs persisted: %v", got)
	}
}

func TestQuotaResolutionOrder(t *testing.T) {
	c := New()
	c.Quotas = api.TenantQuotaPolicy{Default: api.TenantQuota{MaxPending: 5}}
	// No override: static policy applies (and "" maps to the default tenant).
	if q := c.QuotaFor("bob"); q.MaxPending != 5 {
		t.Fatalf("static quota = %+v", q)
	}
	if q := c.QuotaFor(""); q.MaxPending != 5 {
		t.Fatalf("default-tenant quota = %+v", q)
	}
	// Override wins, including an all-zero (= unlimited) override.
	if _, err := c.SetTenantConfig(api.TenantConfig{ObjectMeta: api.ObjectMeta{Name: "bob"}}); err != nil {
		t.Fatal(err)
	}
	if q := c.QuotaFor("bob"); !q.Unlimited() {
		t.Fatalf("override did not lift static quota: %+v", q)
	}
	// Weight 0 in an override means the default weight 1, reported as set.
	if w, ok := c.TenantWeight("bob"); !ok || w != 1 {
		t.Fatalf("zero-weight override = %d %v", w, ok)
	}
	if _, ok := c.TenantWeight("nobody"); ok {
		t.Fatal("weight reported for tenant with no override")
	}
}

func TestHasActiveQuotaOverride(t *testing.T) {
	c := New()
	if c.HasActiveQuotaOverride() {
		t.Fatal("fresh cluster reports an active bound")
	}
	if _, err := c.SetTenantConfig(api.TenantConfig{
		ObjectMeta: api.ObjectMeta{Name: "a"},
		Quota:      api.TenantQuota{MaxActive: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if !c.HasActiveQuotaOverride() {
		t.Fatal("MaxActive override not counted")
	}
	// Replacing the override with an unbounded one clears the count.
	if _, err := c.SetTenantConfig(api.TenantConfig{ObjectMeta: api.ObjectMeta{Name: "a"}}); err != nil {
		t.Fatal(err)
	}
	if c.HasActiveQuotaOverride() {
		t.Fatal("cleared override still counted")
	}
}

// TestTenantQuotaHotReload: admission decisions must see override changes
// immediately — the quota gate consults QuotaFor, not the static policy.
func TestTenantQuotaHotReload(t *testing.T) {
	c := New()
	if _, err := c.SetTenantConfig(api.TenantConfig{
		ObjectMeta: api.ObjectMeta{Name: "tight"},
		Quota:      api.TenantQuota{MaxPending: 1},
	}); err != nil {
		t.Fatal(err)
	}
	j1 := fidelityJob("q1")
	j1.Spec.Tenant = "tight"
	if err := c.SubmitJob(j1); err != nil {
		t.Fatal(err)
	}
	j2 := fidelityJob("q2")
	j2.Spec.Tenant = "tight"
	if err := c.SubmitJob(j2); err == nil {
		t.Fatal("second pending job admitted past MaxPending=1")
	}
	// Raise the cap live; the queued submission now clears.
	if _, err := c.SetTenantConfig(api.TenantConfig{
		ObjectMeta: api.ObjectMeta{Name: "tight"},
		Quota:      api.TenantQuota{MaxPending: 5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitJob(j2); err != nil {
		t.Fatalf("submit after raise: %v", err)
	}
}
