// Package state bundles the typed object stores that make up a QRIO
// cluster's control-plane state (the API server's backing storage) and the
// constructors that turn vendor backends into labelled cluster nodes.
//
// On top of the raw stores the Cluster maintains two incremental indexes,
// fed synchronously by store mutation hooks so they can never drift from
// the stored objects:
//
//   - a FIFO-ordered pending-job index, so the scheduler's hot path costs
//     O(pending work) instead of O(every job ever submitted), and
//   - an About-keyed event index with a per-object ring-buffer cap, so
//     EventsAbout no longer scans (and copies) the whole event log.
package state

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qrio/internal/clock"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/archive"
	"qrio/internal/cluster/store"
	"qrio/internal/device"
)

// EventIndexCap bounds how many events the per-object index retains per
// About key (a ring buffer: the oldest entries fall out first). EventsAbout
// therefore returns at most this many events for one object — far above
// anything a job lifecycle produces, and the controller's global event GC
// trims the store itself long before a healthy object gets near it.
const EventIndexCap = 512

// Cluster is the complete control-plane state.
type Cluster struct {
	Nodes   *store.Store[api.Node]
	Jobs    *store.Store[api.QuantumJob]
	Results *store.Store[api.Result]
	Events  *store.Store[api.Event]

	// TenantConfigs holds operator-set per-tenant overrides (fair-share
	// weight + quota) as regular store objects, so updates hot-reload
	// without a restart and ride the same write-ahead log as every other
	// object. Write through SetTenantConfig; read through QuotaFor /
	// TenantWeight (a hook-fed cache, no store traffic on the hot paths).
	TenantConfigs *store.Store[api.TenantConfig]

	// Archived is the cold tier: terminal jobs (plus their event trails)
	// the retention sweep moved out of the hot stores. History queries
	// fall through to it; job names stay unique across both tiers.
	Archived *archive.Archive

	// Quotas is the deployment's tenant quota policy. SubmitJob enforces
	// it for every submission surface (gateway, master, cluster API,
	// visualizer) — the state layer is the one choke point jobs cannot
	// route around. Set once at wiring time, before any traffic.
	Quotas api.TenantQuotaPolicy

	// RateLimits is the deployment's static tenant rate-limit policy
	// (submission arrival bounds). The gateway enforces it; the state
	// layer only resolves it (RateLimitFor) so live TenantConfig
	// overrides hot-reload exactly like quotas. Set once at wiring time.
	RateLimits api.TenantRateLimitPolicy

	// Clock is the time source behind every timestamp the state layer
	// mints (CreatedAt, FinishedAt, heartbeats, event times). Nil means
	// the wall clock; the fleet simulator injects its virtual clock here.
	// Set once at wiring time, before any traffic.
	Clock clock.Clock

	// Metrics is the optional instrumentation handle (nil = no metrics,
	// the zero-overhead default). Set once at wiring time, before any
	// traffic.
	Metrics *Metrics

	uid atomic.Int64
	// backendCache avoids re-decoding node backend JSON on every access.
	mu           sync.Mutex
	backendCache map[string]*device.Backend

	pending    pendingIndex
	usage      usageIndex
	eventIdx   eventIndex
	terminal   terminalIndex
	scheduled  scheduledIndex
	tenantConf tenantConfIndex
	hub        hubRegistry

	// submitGates serialises SubmitJob per tenant (hash-striped) so the
	// quota check and the store create are atomic with respect to
	// same-tenant racers — the hook-fed usage index updates under the
	// store write, inside the window the gate covers, making admission
	// accounting exact. Striping bounds memory; cross-tenant collisions
	// only cost a moment of false serialisation.
	submitGates [64]sync.Mutex
}

// New returns an empty cluster state with its indexes wired.
func New() *Cluster {
	c := &Cluster{
		Nodes:         store.New(api.Node.DeepCopy, func(n api.Node) string { return n.Name }),
		Jobs:          store.New(api.QuantumJob.DeepCopy, func(j api.QuantumJob) string { return j.Name }),
		Results:       store.New(api.Result.DeepCopy, func(r api.Result) string { return r.Name }),
		Events:        store.New(api.Event.DeepCopy, func(e api.Event) string { return e.Name }),
		TenantConfigs: store.New(api.TenantConfig.DeepCopy, func(t api.TenantConfig) string { return t.Name }),
		Archived:      archive.New(archive.Options{}),
		backendCache:  make(map[string]*device.Backend),
	}
	c.pending.queues = make(map[string][]pendingEntry)
	c.pending.member = make(map[string]pendingRef)
	c.usage.jobs = make(map[string]usageEntry)
	c.usage.tenants = make(map[string]*TenantUsage)
	c.eventIdx.byAbout = make(map[string][]api.Event)
	c.eventIdx.cap = EventIndexCap
	c.terminal.member = make(map[string]terminalEntry)
	c.scheduled.byNode = make(map[string]map[string]api.QuantumJob)
	c.scheduled.node = make(map[string]string)
	c.tenantConf.m = make(map[string]api.TenantConfig)
	c.hub.streams = make(map[int]chan Notification)
	// The hooks run under the mutated shard's lock: they may only touch the
	// index mutexes (never a store), keeping the lock order store→index.
	c.Jobs.OnEvent(c.pending.onJobEvent)
	c.Jobs.OnEvent(c.usage.onJobEvent)
	c.Jobs.OnEvent(c.terminal.onJobEvent)
	c.Jobs.OnEvent(c.scheduled.onJobEvent)
	c.Events.OnEvent(c.eventIdx.onEventEvent)
	c.TenantConfigs.OnEvent(c.tenantConf.onTenantEvent)
	return c
}

// NextUID mints a unique object UID.
func (c *Cluster) NextUID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, c.uid.Add(1))
}

// now reads the cluster's clock (wall clock when none is injected).
func (c *Cluster) now() time.Time { return clock.Now(c.Clock) }

// --- pending-job index --------------------------------------------------

// TenantOf returns the job's quota/fairness principal, normalising the
// pre-tenancy empty field to the default tenant.
func TenantOf(j *api.QuantumJob) string {
	if j.Spec.Tenant == "" {
		return api.DefaultTenant
	}
	return j.Spec.Tenant
}

// pendingEntry is one queued job, ordered by (CreatedAt, Name) — the FIFO
// order within a tenant's sub-queue.
type pendingEntry struct {
	name    string
	created time.Time
}

// pendingRef locates a queued job for O(log n) removal.
type pendingRef struct {
	tenant  string
	created time.Time
}

// pendingIndex is the incrementally maintained pending-job queue, kept as
// per-tenant FIFO sub-queues (the weighted-fair scheduler drains tenants
// against each other; within one tenant order is strictly FIFO). Every
// job mutation flows through onJobEvent (a store hook), covering not just
// SubmitJob/BindJob/CancelJob but also the controller's requeue/retry
// transitions and any future writer — the index cannot go stale.
type pendingIndex struct {
	mu     sync.Mutex
	queues map[string][]pendingEntry // tenant → entries sorted by (created, name)
	member map[string]pendingRef     // job name → its sub-queue position key
	count  int
}

func (p *pendingIndex) onJobEvent(ev store.WatchEvent[api.QuantumJob]) {
	j := ev.Object
	if ev.Type != store.Deleted && j.Status.Phase == api.JobPending {
		p.add(j.Name, TenantOf(&j), j.CreatedAt)
		return
	}
	p.remove(j.Name)
}

// slot returns the sorted position of (created, name) in one sub-queue.
func slot(entries []pendingEntry, name string, created time.Time) int {
	return sort.Search(len(entries), func(i int) bool {
		e := entries[i]
		if !e.created.Equal(created) {
			return e.created.After(created)
		}
		return e.name >= name
	})
}

func (p *pendingIndex) add(name, tenant string, created time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.member[name]; ok {
		return
	}
	q := p.queues[tenant]
	i := slot(q, name, created)
	q = append(q, pendingEntry{})
	copy(q[i+1:], q[i:])
	q[i] = pendingEntry{name: name, created: created}
	p.queues[tenant] = q
	p.member[name] = pendingRef{tenant: tenant, created: created}
	p.count++
}

func (p *pendingIndex) remove(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ref, ok := p.member[name]
	if !ok {
		return
	}
	delete(p.member, name)
	q := p.queues[ref.tenant]
	i := slot(q, name, ref.created)
	if i < len(q) && q[i].name == name {
		q = append(q[:i], q[i+1:]...)
		if len(q) == 0 {
			delete(p.queues, ref.tenant)
		} else {
			p.queues[ref.tenant] = q
		}
		p.count--
	}
}

// names snapshots the queued job names in global FIFO order — the merge
// of every tenant sub-queue by (created, name), which is exactly the
// pre-tenancy single-queue order.
func (p *pendingIndex) names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, p.count)
	if len(p.queues) == 1 {
		// Single tenant (the dominant case): its sub-queue already is the
		// global order — no merge, no sort.
		for _, q := range p.queues {
			for _, e := range q {
				out = append(out, e.name)
			}
		}
		return out
	}
	merged := make([]pendingEntry, 0, p.count)
	for _, q := range p.queues {
		merged = append(merged, q...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].created.Equal(merged[j].created) {
			return merged[i].created.Before(merged[j].created)
		}
		return merged[i].name < merged[j].name
	})
	for _, e := range merged {
		out = append(out, e.name)
	}
	return out
}

// namesCapped snapshots at most perTenant queued names per tenant, in
// the same global FIFO merge order names() produces for what it keeps.
// Each sub-queue is FIFO, so the cap trims only the tail: under deep
// overload a pass still sees the oldest work of every tenant, at
// O(tenants × perTenant) cost instead of O(total backlog).
func (p *pendingIndex) namesCapped(perTenant int) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	merged := make([]pendingEntry, 0, min(p.count, len(p.queues)*perTenant))
	for _, q := range p.queues {
		if len(q) > perTenant {
			q = q[:perTenant]
		}
		merged = append(merged, q...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].created.Equal(merged[j].created) {
			return merged[i].created.Before(merged[j].created)
		}
		return merged[i].name < merged[j].name
	})
	out := make([]string, 0, len(merged))
	for _, e := range merged {
		out = append(out, e.name)
	}
	return out
}

// PendingJobs returns copies of the pending jobs oldest-first (stable on
// name) — the scheduler's work queue. Cost is proportional to the pending
// backlog, independent of how many terminal jobs remain resident. The
// index snapshot is taken before any store read (index lock is never held
// across a store lock), so a job racing to a new phase is simply filtered
// by the per-job re-check.
func (c *Cluster) PendingJobs() []api.QuantumJob {
	return c.pendingByName(c.pending.names())
}

// PendingJobsCapped is PendingJobs bounded to the oldest perTenant jobs
// of each tenant's sub-queue (perTenant <= 0 means no cap). The deep
// copies a pass pays for — and the memory it pins — stop growing with
// the backlog; jobs beyond the cap are simply picked up by later passes
// once the head drains. The virtual-time simulator relies on this to
// push million-job open-loop traces through real scheduling passes.
func (c *Cluster) PendingJobsCapped(perTenant int) []api.QuantumJob {
	if perTenant <= 0 {
		return c.PendingJobs()
	}
	return c.pendingByName(c.pending.namesCapped(perTenant))
}

func (c *Cluster) pendingByName(names []string) []api.QuantumJob {
	out := make([]api.QuantumJob, 0, len(names))
	for _, name := range names {
		j, _, err := c.Jobs.Get(name)
		if err == nil && j.Status.Phase == api.JobPending {
			out = append(out, j)
		}
	}
	return out
}

// PendingJob pairs a pending job with the resource version it was read
// at — the observation a replica's BindJobAt compare-and-swap binds
// against.
type PendingJob struct {
	Job     api.QuantumJob
	Version int64
}

// PendingJobsVersioned is PendingJobsCapped carrying each job's resource
// version, for scheduler replicas that bind optimistically. perTenant <= 0
// means no cap.
func (c *Cluster) PendingJobsVersioned(perTenant int) []PendingJob {
	names := c.pending.names()
	if perTenant > 0 {
		names = c.pending.namesCapped(perTenant)
	}
	out := make([]PendingJob, 0, len(names))
	for _, name := range names {
		j, v, err := c.Jobs.Get(name)
		if err == nil && j.Status.Phase == api.JobPending {
			out = append(out, PendingJob{Job: j, Version: v})
		}
	}
	return out
}

// PendingCount reports the queued-job count without copying anything.
func (c *Cluster) PendingCount() int {
	c.pending.mu.Lock()
	defer c.pending.mu.Unlock()
	return c.pending.count
}

// ActiveCount reports how many jobs currently hold node resources
// (Scheduled or Running), summed across tenants from the usage index —
// no store scan.
func (c *Cluster) ActiveCount() int {
	c.usage.mu.Lock()
	defer c.usage.mu.Unlock()
	n := 0
	for _, t := range c.usage.tenants {
		n += t.Active
	}
	return n
}

// --- tenant usage index -------------------------------------------------

// TenantUsage aggregates one tenant's admitted-but-unfinished work — the
// figures the gateway's admission layer checks quotas against and
// GET /v1/tenants reports.
type TenantUsage struct {
	Tenant string `json:"tenant"`
	// Pending counts jobs waiting in the queue.
	Pending int `json:"pending"`
	// Active counts jobs holding node resources (Scheduled or Running).
	Active int `json:"active"`
	// QubitSeconds sums the estimated device-time demand of every
	// non-terminal job (api.EstimateQubitSeconds).
	QubitSeconds float64 `json:"qubitSeconds"`
}

// usageEntry remembers how one live job was last counted, so a phase
// transition can be applied as an exact decrement/increment pair.
type usageEntry struct {
	tenant  string
	pending bool
	active  bool
	qsec    float64
}

// usageIndex maintains per-tenant aggregates, fed by the same store hook
// chain as the pending index — every writer is covered, the counters
// cannot drift from the stored jobs.
type usageIndex struct {
	mu      sync.Mutex
	jobs    map[string]usageEntry
	tenants map[string]*TenantUsage
}

func (u *usageIndex) onJobEvent(ev store.WatchEvent[api.QuantumJob]) {
	j := ev.Object
	u.mu.Lock()
	defer u.mu.Unlock()
	if prev, ok := u.jobs[j.Name]; ok {
		u.applyLocked(prev, -1)
		delete(u.jobs, j.Name)
	}
	if ev.Type == store.Deleted || j.Status.Phase.Terminal() {
		return
	}
	e := usageEntry{
		tenant:  TenantOf(&j),
		pending: j.Status.Phase == api.JobPending,
		active:  j.Status.Phase == api.JobScheduled || j.Status.Phase == api.JobRunning,
		qsec:    j.Spec.QubitSecondsDemand(),
	}
	u.jobs[j.Name] = e
	u.applyLocked(e, +1)
}

func (u *usageIndex) applyLocked(e usageEntry, sign int) {
	t := u.tenants[e.tenant]
	if t == nil {
		if sign < 0 {
			return
		}
		t = &TenantUsage{Tenant: e.tenant}
		u.tenants[e.tenant] = t
	}
	if e.pending {
		t.Pending += sign
	}
	if e.active {
		t.Active += sign
	}
	t.QubitSeconds += float64(sign) * e.qsec
	if t.Pending <= 0 && t.Active <= 0 {
		delete(u.tenants, e.tenant)
	}
}

// TenantUsage reports one tenant's live aggregate (zero value when the
// tenant has no admitted work).
func (c *Cluster) TenantUsage(tenant string) TenantUsage {
	if tenant == "" {
		tenant = api.DefaultTenant
	}
	c.usage.mu.Lock()
	defer c.usage.mu.Unlock()
	if t := c.usage.tenants[tenant]; t != nil {
		return *t
	}
	return TenantUsage{Tenant: tenant}
}

// TenantUsages lists every tenant with admitted work, name-ordered.
func (c *Cluster) TenantUsages() []TenantUsage {
	c.usage.mu.Lock()
	out := make([]TenantUsage, 0, len(c.usage.tenants))
	for _, t := range c.usage.tenants {
		out = append(out, *t)
	}
	c.usage.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// --- event index --------------------------------------------------------

// eventIndex maintains per-About event lists with a ring-buffer cap.
type eventIndex struct {
	mu      sync.Mutex
	byAbout map[string][]api.Event
	cap     int
}

func (x *eventIndex) onEventEvent(ev store.WatchEvent[api.Event]) {
	switch ev.Type {
	case store.Added:
		x.add(ev.Object)
	case store.Deleted:
		x.remove(ev.Object.About, ev.Object.Name)
	}
}

func (x *eventIndex) add(e api.Event) {
	x.mu.Lock()
	defer x.mu.Unlock()
	list := append(x.byAbout[e.About], e)
	if x.cap > 0 && len(list) > x.cap {
		copy(list, list[len(list)-x.cap:])
		list = list[:x.cap]
	}
	x.byAbout[e.About] = list
}

func (x *eventIndex) remove(about, name string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	list := x.byAbout[about]
	for i, e := range list {
		if e.Name == name {
			x.byAbout[about] = append(list[:i], list[i+1:]...)
			if len(x.byAbout[about]) == 0 {
				delete(x.byAbout, about)
			}
			return
		}
	}
}

// about returns a copy of the indexed events for one object.
func (x *eventIndex) about(about string) []api.Event {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]api.Event(nil), x.byAbout[about]...)
}

// --- nodes --------------------------------------------------------------

// NodeLabels derives the scheduling labels of §3.1 from a backend.
func NodeLabels(b *device.Backend) map[string]string {
	return map[string]string{
		api.LabelQubits:     strconv.Itoa(b.NumQubits),
		api.LabelAvg2QErr:   api.FormatFloatLabel(b.AvgTwoQubitErr()),
		api.LabelAvgT1us:    api.FormatFloatLabel(b.AvgT1us()),
		api.LabelAvgT2us:    api.FormatFloatLabel(b.AvgT2us()),
		api.LabelAvgReadout: api.FormatFloatLabel(b.AvgReadoutErr()),
		api.LabelCPUMillis:  strconv.FormatInt(b.CPUMillis, 10),
		api.LabelMemoryMB:   strconv.FormatInt(b.MemoryMB, 10),
	}
}

// AddNode registers a vendor backend as a ready cluster node.
func (c *Cluster) AddNode(b *device.Backend) (api.Node, error) {
	if err := b.Validate(); err != nil {
		return api.Node{}, fmt.Errorf("state: refusing invalid backend: %w", err)
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return api.Node{}, err
	}
	now := c.now()
	n := api.Node{
		ObjectMeta: api.ObjectMeta{
			Name:      b.Name,
			UID:       c.NextUID("node"),
			CreatedAt: now,
			Labels:    NodeLabels(b),
		},
		Spec: api.NodeSpec{
			BackendJSON: raw,
			CPUMillis:   b.CPUMillis,
			MemoryMB:    b.MemoryMB,
		},
		Status: api.NodeStatus{Phase: api.NodeReady, LastHeartbeat: now},
	}
	if _, err := c.Nodes.Create(n); err != nil {
		return api.Node{}, err
	}
	return n, nil
}

// Backend decodes (and caches) the device behind a node.
func (c *Cluster) Backend(nodeName string) (*device.Backend, error) {
	c.mu.Lock()
	if b, ok := c.backendCache[nodeName]; ok {
		c.mu.Unlock()
		return b, nil
	}
	c.mu.Unlock()
	n, _, err := c.Nodes.Get(nodeName)
	if err != nil {
		return nil, err
	}
	var b device.Backend
	if err := json.Unmarshal(n.Spec.BackendJSON, &b); err != nil {
		return nil, fmt.Errorf("state: node %s backend corrupt: %w", nodeName, err)
	}
	c.mu.Lock()
	c.backendCache[nodeName] = &b
	c.mu.Unlock()
	return &b, nil
}

// QuotaExceededError reports a submission rejected by the deployment's
// tenant quota policy. Limit names the bound that tripped ("pending",
// "active" or "qubit-seconds").
type QuotaExceededError struct {
	Tenant string
	Limit  string
	Detail string
}

func (e *QuotaExceededError) Error() string {
	return fmt.Sprintf("state: tenant %s over %s quota: %s", e.Tenant, e.Limit, e.Detail)
}

// HTTPStatus implements httpx.StatusCoder: quota rejections map to 429
// with the "quota_exceeded" envelope code.
func (e *QuotaExceededError) HTTPStatus() (int, string) { return 429, "quota_exceeded" }

// RetryAfter implements httpx.RetryAfterer. Quotas release when in-flight
// work finishes, which the server cannot forecast; one second is the
// shortest hint the Retry-After header can carry and stops well-behaved
// clients from busy-looping on a full quota.
func (e *QuotaExceededError) RetryAfter() time.Duration { return time.Second }

// CheckTenantQuota evaluates the tenant's quota against its live usage
// plus one prospective submission of qsec qubit-seconds. Callers that
// need exactness against concurrent submitters must hold the tenant's
// submit gate (SubmitJob does; the gateway's admission layer holds its
// own gate across the whole submission pipeline).
func (c *Cluster) CheckTenantQuota(tenant string, qsec float64) error {
	quota := c.QuotaFor(tenant)
	if quota.Unlimited() {
		return nil
	}
	usage := c.TenantUsage(tenant)
	if quota.MaxPending > 0 && usage.Pending >= quota.MaxPending {
		return c.rejectQuota(&QuotaExceededError{
			Tenant: tenant, Limit: "pending",
			Detail: fmt.Sprintf("%d pending of %d allowed", usage.Pending, quota.MaxPending),
		})
	}
	if quota.MaxActive > 0 && usage.Active >= quota.MaxActive {
		return c.rejectQuota(&QuotaExceededError{
			Tenant: tenant, Limit: "active",
			Detail: fmt.Sprintf("%d jobs on nodes of %d allowed — wait for one to finish",
				usage.Active, quota.MaxActive),
		})
	}
	if quota.MaxQubitSeconds > 0 && usage.QubitSeconds+qsec > quota.MaxQubitSeconds {
		return c.rejectQuota(&QuotaExceededError{
			Tenant: tenant, Limit: "qubit-seconds",
			Detail: fmt.Sprintf("%.3f in flight + %.3f requested exceeds %.3f allowed",
				usage.QubitSeconds, qsec, quota.MaxQubitSeconds),
		})
	}
	return nil
}

// rejectQuota counts and passes through a quota rejection. The gateway's
// admission layer rejects before SubmitJob would re-check, so each
// rejected submission increments exactly once.
func (c *Cluster) rejectQuota(err *QuotaExceededError) error {
	if m := c.Metrics; m != nil {
		m.QuotaRejections.With(err.Limit).Inc()
	}
	return err
}

// submitGate returns the tenant's submit-serialisation stripe.
func (c *Cluster) submitGate(tenant string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return &c.submitGates[h.Sum32()%uint32(len(c.submitGates))]
}

// SubmitJob validates and stores a new job in the Pending phase. The
// tenant quota policy is enforced here — the choke point every
// submission surface (gateway, master, cluster API, visualizer) flows
// through — under a per-tenant gate so concurrent same-tenant
// submissions cannot overshoot the last quota slot.
func (c *Cluster) SubmitJob(j api.QuantumJob) error {
	if j.Spec.Shots == 0 {
		j.Spec.Shots = api.DefaultShots
	}
	if j.Spec.Tenant == "" {
		j.Spec.Tenant = api.DefaultTenant
	}
	if err := j.Validate(); err != nil {
		return err
	}
	// Names are unique across the hot store AND the archive: letting a new
	// job shadow an archived one would make history queries ambiguous.
	if c.Archived.Has(j.Name) {
		return store.ErrExists{Name: j.Name}
	}
	gate := c.submitGate(j.Spec.Tenant)
	gate.Lock()
	defer gate.Unlock()
	if err := c.CheckTenantQuota(j.Spec.Tenant, j.Spec.QubitSecondsDemand()); err != nil {
		return err
	}
	j.UID = c.NextUID("job")
	j.CreatedAt = c.now()
	j.Status = api.JobStatus{Phase: api.JobPending}
	created, err := c.Jobs.Create(j)
	if err != nil {
		return err
	}
	// Re-check the archive AFTER the create: a sweep that was between its
	// archive-copy and hot-delete steps when the pre-check ran makes both
	// tiers look name-free for one window. If the name surfaced in the
	// archive meanwhile, the sweep's conditional delete cannot have taken
	// our fresh object (different version), so its copy stands — undo the
	// create and report the conflict, keeping names unique across tiers.
	if c.Archived.Has(j.Name) {
		err := c.Jobs.DeleteFunc(j.Name, func(_ api.QuantumJob, v int64) error {
			if v != created {
				return fmt.Errorf("state: job %s advanced during duplicate-name rollback", j.Name)
			}
			return nil
		})
		if err == nil {
			return store.ErrExists{Name: j.Name}
		}
		// Another actor already advanced the fresh job (sub-microsecond
		// window); let the accepted submission stand.
	}
	c.RecordEvent("Job", j.Name, "Submitted", "job accepted by the API server")
	return nil
}

// ConflictError reports an optimistic-concurrency bind that lost: the
// job's resource version moved between the caller's observation and the
// bind transaction. Another scheduler replica (or a cancel, or a kubelet
// transition) won the race — the caller should skip the job, not retry
// or alarm.
type ConflictError struct {
	Job      string
	Observed int64 // the version the caller bound against
	Current  int64 // the version the store held at transaction time
}

func (e ConflictError) Error() string {
	return fmt.Sprintf("state: job %s moved from version %d to %d during binding",
		e.Job, e.Observed, e.Current)
}

// HTTPStatus implements httpx.StatusCoder: a lost optimistic bind is the
// canonical 409.
func (e ConflictError) HTTPStatus() (int, string) { return 409, "conflict" }

// IsConflict reports whether err is (or wraps) a lost optimistic bind.
func IsConflict(err error) bool {
	var c ConflictError
	return errors.As(err, &c)
}

// BindJob assigns a pending job to a node (the scheduler's binding step)
// and reserves one of the node's container slots plus the job's classical
// resources. The node update is the serialisation point: concurrent binds
// racing for the last free slot fail here rather than overcommitting.
func (c *Cluster) BindJob(jobName, nodeName string, score float64) error {
	return c.BindJobAt(jobName, nodeName, score, 0)
}

// BindJobAt is BindJob with optimistic concurrency: when version > 0 the
// bind commits only if the job's resource version still equals version at
// the phase-transition step (compare-and-swap under the job shard's
// lock), returning ConflictError otherwise. Racing scheduler replicas
// each bind at the version they observed in their pending snapshot, so
// exactly one wins per job and the losers learn cheaply. version 0 skips
// the check — the single-replica fast path.
func (c *Cluster) BindJobAt(jobName, nodeName string, score float64, version int64) error {
	job, cur, err := c.Jobs.Get(jobName)
	if err != nil {
		return err
	}
	// Fast path: a stale observation loses before it touches the node
	// shard, so conflict storms don't serialise on node locks.
	if version > 0 && cur != version {
		return ConflictError{Job: jobName, Observed: version, Current: cur}
	}
	if job.Status.Phase != api.JobPending {
		return fmt.Errorf("state: job %s is %s, not pending", jobName, job.Status.Phase)
	}
	_, _, err = c.Nodes.Update(nodeName, func(n api.Node) (api.Node, error) {
		if n.Status.Phase != api.NodeReady {
			return n, fmt.Errorf("state: node %s not ready", nodeName)
		}
		if slots := n.ContainerSlots(); len(n.Status.RunningJobs) >= slots {
			return n, fmt.Errorf("state: node %s at container capacity (%d/%d)",
				nodeName, len(n.Status.RunningJobs), slots)
		}
		if n.Status.HasRunningJob(jobName) {
			return n, fmt.Errorf("state: job %s already bound to node %s", jobName, nodeName)
		}
		if free := n.Spec.CPUMillis - n.Status.CPUMillisInUse; job.Spec.Resources.CPUMillis > free {
			return n, fmt.Errorf("state: node %s has %dm CPU free, job %s needs %dm",
				nodeName, free, jobName, job.Spec.Resources.CPUMillis)
		}
		if free := n.Spec.MemoryMB - n.Status.MemoryMBInUse; job.Spec.Resources.MemoryMB > free {
			return n, fmt.Errorf("state: node %s has %dMB memory free, job %s needs %dMB",
				nodeName, free, jobName, job.Spec.Resources.MemoryMB)
		}
		n.Status.RunningJobs = append(n.Status.RunningJobs, jobName)
		n.Status.CPUMillisInUse += job.Spec.Resources.CPUMillis
		n.Status.MemoryMBInUse += job.Spec.Resources.MemoryMB
		return n, nil
	})
	if err != nil {
		return err
	}
	mutate := func(j api.QuantumJob) (api.QuantumJob, error) {
		// Re-check under the job store's lock: a CancelJob (or any other
		// transition) that landed between the pending check above and
		// this update must win, not be silently overwritten.
		if j.Status.Phase != api.JobPending {
			return j, fmt.Errorf("state: job %s became %s during binding", jobName, j.Status.Phase)
		}
		j.Status.Phase = api.JobScheduled
		j.Status.Node = nodeName
		j.Status.Score = score
		return j, nil
	}
	if version > 0 {
		// The compare-and-swap: check and mutate run atomically under the
		// job shard's lock, so no transition can slip between them.
		_, _, err = c.Jobs.UpdateFunc(jobName, func(_ api.QuantumJob, v int64) error {
			if v != version {
				return ConflictError{Job: jobName, Observed: version, Current: v}
			}
			return nil
		}, mutate)
	} else {
		_, _, err = c.Jobs.Update(jobName, mutate)
	}
	if err != nil {
		// The node reservation above is now orphaned; give it back. A
		// rollback that itself fails (node deregistered mid-flight) must
		// not vanish: latch it so operators can reconcile the orphan.
		if rerr := c.ReleaseNode(nodeName, jobName); rerr != nil {
			c.LatchReleaseFailure(nodeName, jobName, rerr)
		}
		return err
	}
	if m := c.Metrics; m != nil {
		m.SubmitToBind.Observe(c.now().Sub(job.CreatedAt).Seconds())
		m.TenantBinds.With(TenantOf(&job)).Inc()
	}
	c.RecordEvent("Job", jobName, "Scheduled",
		fmt.Sprintf("bound to node %s (score %.4f)", nodeName, score))
	return nil
}

// TerminalJobError reports a lifecycle operation against a job that has
// already reached a terminal phase (the /v1 conflict case).
type TerminalJobError struct {
	Job   string
	Phase api.JobPhase
}

func (e TerminalJobError) Error() string {
	return fmt.Sprintf("state: job %s is already %s", e.Job, e.Phase)
}

// HTTPStatus implements httpx.StatusCoder: terminal-phase conflicts map to
// 409 with the "conflict" envelope code.
func (e TerminalJobError) HTTPStatus() (int, string) { return 409, "conflict" }

// CancelJob drives the user-initiated cancellation path and returns the
// updated job. Pending jobs leave the queue immediately; scheduled jobs
// additionally give their node slot back; running jobs are flagged with
// CancelRequested and the owning kubelet aborts the container (the job
// reaches JobCancelled when the abort lands). Cancelling a terminal job
// returns TerminalJobError — including a job the retention sweep has
// already moved to the archive: the cancel must NOT resurrect it, and a
// cancel racing the sweep resolves to either "sweep lost, normal conflict"
// or "sweep won, archived conflict", never a ghost job. The job update is
// atomic with the phase check, so a cancel racing a kubelet's
// Scheduled→Running claim resolves cleanly: exactly one of the two
// transitions wins.
func (c *Cluster) CancelJob(name string) (api.QuantumJob, error) {
	releasedNode := ""
	running := false
	updated, _, err := c.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
		releasedNode, running = "", false
		switch j.Status.Phase {
		case api.JobPending:
			now := c.now()
			j.Status.Phase = api.JobCancelled
			j.Status.FinishedAt = &now
			j.Status.Message = "cancelled while pending"
		case api.JobScheduled:
			releasedNode = j.Status.Node
			now := c.now()
			j.Status.Phase = api.JobCancelled
			j.Status.Node = ""
			j.Status.FinishedAt = &now
			j.Status.Message = "cancelled before execution started"
		case api.JobRunning:
			running = true
			j.Status.CancelRequested = true
		default:
			return j, TerminalJobError{Job: name, Phase: j.Status.Phase}
		}
		return j, nil
	})
	if err != nil {
		var notFound store.ErrNotFound
		if errors.As(err, &notFound) {
			// Not in the hot store — the sweep may already have archived it.
			// An archived job is terminal by construction: answer with the
			// same typed conflict a resident terminal job gets, so the
			// caller cannot tell (or care) which tier it rests in.
			if entry, ok := c.Archived.Get(name); ok {
				return api.QuantumJob{}, TerminalJobError{Job: name, Phase: entry.Job.Status.Phase}
			}
		}
		return api.QuantumJob{}, err
	}
	if releasedNode != "" {
		if rerr := c.ReleaseNode(releasedNode, name); rerr != nil {
			c.LatchReleaseFailure(releasedNode, name, rerr)
		}
	}
	if running {
		c.RecordEvent("Job", name, "CancelRequested",
			fmt.Sprintf("cancellation requested; aborting container on %s", updated.Status.Node))
	} else {
		c.RecordEvent("Job", name, "Cancelled", updated.Status.Message)
	}
	return updated, nil
}

// ReleaseNode frees the container slot and resource reservation a job held
// on a node. The job lookup happens before the node update so no store
// read nests inside the node shard's lock; a job the retention sweep has
// already archived resolves through the archive tier (the ResultFor
// two-tier pattern) so its CPU/memory reservation is still decremented —
// releasing only the slot would leak classical-resource accounting until
// the node re-registers. The returned error is the node update failing
// (typically the node deregistered mid-release); callers that cannot
// retry should latch it via releaseFailed.
func (c *Cluster) ReleaseNode(nodeName, jobName string) error {
	job, _, jobErr := c.Jobs.Get(jobName)
	if jobErr != nil {
		if entry, ok := c.Archived.Get(jobName); ok {
			job, jobErr = entry.Job, nil
		}
	}
	_, _, err := c.Nodes.Update(nodeName, func(n api.Node) (api.Node, error) {
		if !n.Status.HasRunningJob(jobName) {
			return n, nil
		}
		kept := n.Status.RunningJobs[:0]
		for _, j := range n.Status.RunningJobs {
			if j != jobName {
				kept = append(kept, j)
			}
		}
		n.Status.RunningJobs = kept
		if len(n.Status.RunningJobs) == 0 {
			n.Status.RunningJobs = nil
		}
		if jobErr == nil {
			n.Status.CPUMillisInUse -= job.Spec.Resources.CPUMillis
			n.Status.MemoryMBInUse -= job.Spec.Resources.MemoryMB
			if n.Status.CPUMillisInUse < 0 {
				n.Status.CPUMillisInUse = 0
			}
			if n.Status.MemoryMBInUse < 0 {
				n.Status.MemoryMBInUse = 0
			}
		}
		return n, nil
	})
	return err
}

// LatchReleaseFailure latches a release that could not land: a
// ReleaseFailed event on the job plus the
// qrio_state_release_failures_total counter. The reservation may be
// orphaned until the node re-registers (node registration rebuilds
// accounting from scratch), so the failure must be visible rather than
// silently dropped. Every ReleaseNode caller that cannot retry routes
// its error here.
func (c *Cluster) LatchReleaseFailure(nodeName, jobName string, err error) {
	if m := c.Metrics; m != nil {
		m.ReleaseFailures.Inc()
	}
	c.RecordEvent("Job", jobName, "ReleaseFailed",
		fmt.Sprintf("could not release reservation on node %s: %v", nodeName, err))
}

// RecordEvent appends an observability event. The timestamp is taken once
// so CreatedAt and Time can never disagree.
func (c *Cluster) RecordEvent(kind, about, reason, message string) {
	now := c.now()
	c.Events.Create(api.Event{
		ObjectMeta: api.ObjectMeta{Name: c.NextUID("event"), CreatedAt: now},
		Kind:       kind,
		About:      about,
		Reason:     reason,
		Message:    message,
		Time:       now,
	})
}

// EventsAbout lists events for one object, oldest first, straight from the
// incremental index — no scan over the global event log. At most
// EventIndexCap (the newest) are retained per object.
func (c *Cluster) EventsAbout(about string) []api.Event {
	out := c.eventIdx.about(about)
	sortEventsByTime(out)
	return out
}

func sortEventsByTime(events []api.Event) {
	// SliceStable: events recorded within one clock tick keep their
	// creation order (the index appends in creation order).
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
}
