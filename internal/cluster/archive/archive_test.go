package archive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"qrio/internal/cluster/api"
)

func entry(name string, phase api.JobPhase) Entry {
	return Entry{
		Job: api.QuantumJob{
			ObjectMeta: api.ObjectMeta{Name: name},
			Status:     api.JobStatus{Phase: phase},
		},
		Events:     []api.Event{{ObjectMeta: api.ObjectMeta{Name: name + "-ev"}, About: name}},
		ArchivedAt: time.Unix(1700000000, 0),
	}
}

// TestPutGetListAcrossSegments fills several segments and checks lookup,
// duplicate rejection and filtered listing.
func TestPutGetListAcrossSegments(t *testing.T) {
	a := New(Options{SegmentSize: 4})
	const n = 11
	for i := 0; i < n; i++ {
		phase := api.JobSucceeded
		if i%2 == 1 {
			phase = api.JobFailed
		}
		if err := a.Put(entry(fmt.Sprintf("job-%02d", i), phase)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != n {
		t.Fatalf("Len = %d, want %d", a.Len(), n)
	}
	var dup ErrExists
	if err := a.Put(entry("job-03", api.JobSucceeded)); !errors.As(err, &dup) {
		t.Fatalf("duplicate Put err = %v, want ErrExists", err)
	}
	e, ok := a.Get("job-07")
	if !ok || e.Job.Status.Phase != api.JobFailed || len(e.Events) != 1 {
		t.Fatalf("Get(job-07) = %+v, %v", e, ok)
	}
	failed := a.List(func(j *api.QuantumJob) bool { return j.Status.Phase == api.JobFailed })
	if len(failed) != 5 {
		t.Fatalf("failed list = %d entries, want 5", len(failed))
	}
	if all := a.List(nil); len(all) != n {
		t.Fatalf("nil-predicate list = %d entries, want %d", len(all), n)
	}
}

// TestDeepCopyIsolation ensures stored entries cannot be mutated through
// the values the caller passed in or got back.
func TestDeepCopyIsolation(t *testing.T) {
	a := New(Options{})
	in := entry("iso", api.JobSucceeded)
	in.Job.Labels = map[string]string{"k": "v"}
	if err := a.Put(in); err != nil {
		t.Fatal(err)
	}
	in.Job.Labels["k"] = "mutated"
	in.Events[0].Reason = "mutated"
	out, _ := a.Get("iso")
	if out.Job.Labels["k"] != "v" || out.Events[0].Reason == "mutated" {
		t.Fatal("caller mutation reached the archive")
	}
	out.Job.Labels["k"] = "mutated-again"
	again, _ := a.Get("iso")
	if again.Job.Labels["k"] != "v" {
		t.Fatal("returned copy aliases the archive")
	}
}

// TestRemoveTombstones covers the sweep-rollback path: the slot is
// tombstoned, lookups and lists skip it, and the name can be re-archived.
func TestRemoveTombstones(t *testing.T) {
	a := New(Options{SegmentSize: 2})
	for _, name := range []string{"a", "b", "c"} {
		if err := a.Put(entry(name, api.JobSucceeded)); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if a.Remove("b") {
		t.Fatal("second Remove(b) = true")
	}
	if a.Has("b") || a.Len() != 2 {
		t.Fatalf("post-remove Has(b)=%v Len=%d", a.Has("b"), a.Len())
	}
	if got := a.List(nil); len(got) != 2 {
		t.Fatalf("list after remove = %d entries, want 2", len(got))
	}
	if err := a.Put(entry("b", api.JobCancelled)); err != nil {
		t.Fatalf("re-archive after rollback: %v", err)
	}
	e, _ := a.Get("b")
	if e.Job.Status.Phase != api.JobCancelled {
		t.Fatalf("re-archived phase = %s", e.Job.Status.Phase)
	}
}

// TestSpillJSONL checks the spill writer gets one decodable JSON line per
// archived entry.
func TestSpillJSONL(t *testing.T) {
	var buf bytes.Buffer
	a := New(Options{Spill: &buf})
	for i := 0; i < 3; i++ {
		if err := a.Put(entry(fmt.Sprintf("s%d", i), api.JobSucceeded)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.SpillErr(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if e.Job.Name != fmt.Sprintf("s%d", lines) {
			t.Fatalf("line %d names %s", lines, e.Job.Name)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("spill has %d lines, want 3", lines)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk gone") }

// TestSpillErrorLatched: a failing spill never blocks archiving, and the
// first error is reported.
func TestSpillErrorLatched(t *testing.T) {
	a := New(Options{Spill: failWriter{}})
	if err := a.Put(entry("x", api.JobSucceeded)); err != nil {
		t.Fatal(err)
	}
	if err := a.SpillErr(); err == nil {
		t.Fatal("spill error not latched")
	}
	if !a.Has("x") {
		t.Fatal("entry lost on spill failure")
	}
}

// TestMaxResidentEvictsOldestSegments: the residency bound releases whole
// old segments (oldest first), keeps the spill as complete history, and
// never touches the segment a Put just wrote into.
func TestMaxResidentEvictsOldestSegments(t *testing.T) {
	var spill bytes.Buffer
	a := New(Options{SegmentSize: 4, MaxResident: 6, Spill: &spill})
	const n = 16
	for i := 0; i < n; i++ {
		if err := a.Put(entry(fmt.Sprintf("job-%02d", i), api.JobSucceeded)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if got := a.Len() + a.Dropped(); got != n {
		t.Fatalf("Len+Dropped = %d, want %d", got, n)
	}
	if a.Len() > 6+4 {
		// The bound is enforced in whole segments, so residency may
		// overshoot by at most one segment.
		t.Fatalf("resident %d far above bound", a.Len())
	}
	if a.Dropped() == 0 {
		t.Fatal("nothing evicted")
	}
	// Oldest entries are gone from memory, newest remain.
	if _, ok := a.Get("job-00"); ok {
		t.Fatal("oldest entry still resident")
	}
	if a.Has("job-00") {
		t.Fatal("Has reports an evicted entry")
	}
	last := fmt.Sprintf("job-%02d", n-1)
	if _, ok := a.Get(last); !ok {
		t.Fatal("newest entry missing")
	}
	// List skips released segments without panicking and returns only
	// resident jobs.
	live := a.List(nil)
	if len(live) != a.Len() {
		t.Fatalf("List returned %d, Len is %d", len(live), a.Len())
	}
	// Eviction is not deletion: no tombstones were spilled, so replaying
	// the spill restores all n entries.
	fresh := New(Options{})
	if got, err := fresh.Load(&spill); err != nil || got != n {
		t.Fatalf("Load = %d, %v; want %d, nil", got, err, n)
	}
	if _, ok := fresh.Get("job-00"); !ok {
		t.Fatal("spill replay lost an evicted entry")
	}
}
