// Package archive is the cold tier behind QRIO's hot cluster state: an
// append-mostly record of terminal jobs (and their event trails) that the
// retention sweep moves out of the sharded stores. The hot store — and
// with it every O(resident jobs) cost: memory, list walks, watch re-List
// recovery — stays proportional to live work, while job history remains
// fully queryable through GET /v1/jobs?archived=true and the by-name
// fallthrough on GET /v1/jobs/{name}.
//
// Storage is in-memory segments (fixed-size entry slabs, appended and
// never resliced) plus an optional JSONL spill writer: when configured,
// every archived entry is additionally encoded as one JSON line, giving
// deployments a durable, grep-able history file at zero read-path cost.
// Removal exists only to roll back a sweep that lost its delete race
// (tombstoning the slot), hence "append-mostly".
package archive

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"qrio/internal/cluster/api"
)

// DefaultSegmentSize is how many entries one in-memory segment holds.
// Segments are allocated whole, so the archive grows in coarse steps and
// never copies old entries when it expands.
const DefaultSegmentSize = 512

// Entry is one archived job: the terminal object, its event trail as of
// archival, and the sweep timestamp.
type Entry struct {
	Job    api.QuantumJob `json:"job"`
	Events []api.Event    `json:"events,omitempty"`
	// Result is the job's execution record (logs, counts, fidelity),
	// retired from the hot Results store along with the job. Nil when the
	// job never produced one — or was archived before result retirement
	// existed, so old spill files load cleanly.
	Result     *api.Result `json:"result,omitempty"`
	ArchivedAt time.Time   `json:"archivedAt"`
}

// deepCopy isolates an entry the same way the hot store isolates objects.
func (e Entry) deepCopy() Entry {
	out := e
	out.Job = e.Job.DeepCopy()
	if e.Events != nil {
		out.Events = make([]api.Event, len(e.Events))
		for i, ev := range e.Events {
			out.Events[i] = ev.DeepCopy()
		}
	}
	if e.Result != nil {
		r := e.Result.DeepCopy()
		out.Result = &r
	}
	return out
}

// slot addresses one entry inside the segment list.
type slot struct{ seg, off int }

// Options configure an archive.
type Options struct {
	// SegmentSize overrides DefaultSegmentSize (entries per segment).
	SegmentSize int
	// Spill, when non-nil, receives every archived entry as one JSON line
	// (JSONL). Writes happen under the archive lock, so the writer needs
	// no additional synchronisation; the first write error is latched and
	// reported by SpillErr, and later entries skip the writer.
	Spill io.Writer
	// MaxResident bounds how many entries stay resident in memory;
	// 0 (the default) keeps everything, today's behaviour. When a Put
	// pushes the live count past the bound, the OLDEST whole segments are
	// released: their entries leave the index and their memory is freed.
	// Dropping is memory eviction, not deletion — no tombstone is spilled,
	// so a configured spill file remains the complete history. Bounded
	// archives suit batch drivers (the fleet simulator) and
	// memory-constrained deployments that rely on the spill for history.
	MaxResident int
}

// Archive is a thread-safe terminal-job archive.
type Archive struct {
	mu       sync.RWMutex
	segments [][]Entry
	index    map[string]slot
	segSize  int
	count    int
	spill    io.Writer
	spillErr error
	// maxResident caps live in-memory entries (0 = unlimited); headSeg is
	// the first segment that still holds memory — earlier ones were
	// released by the bound and stay nil; dropped counts entries evicted
	// that way (they remain part of the archive's history total).
	maxResident int
	headSeg     int
	dropped     int
}

// New builds an empty archive.
func New(opts Options) *Archive {
	size := opts.SegmentSize
	if size < 1 {
		size = DefaultSegmentSize
	}
	return &Archive{
		index:       make(map[string]slot),
		segSize:     size,
		spill:       opts.Spill,
		maxResident: opts.MaxResident,
	}
}

// SetSpill installs the JSONL spill writer. Like store hooks, it must be
// set before the archive is shared between goroutines.
func (a *Archive) SetSpill(w io.Writer) { a.spill = w }

// ErrExists reports a Put of a name the archive already holds.
type ErrExists struct{ Name string }

func (e ErrExists) Error() string { return fmt.Sprintf("archive: %q already archived", e.Name) }

// Put appends one entry. The entry is deep-copied on the way in, so the
// caller's job/events remain private. Archiving a name twice returns
// ErrExists — job names are unique across the hot store and the archive.
func (a *Archive) Put(e Entry) error {
	name := e.Job.Name
	if name == "" {
		return fmt.Errorf("archive: entry has no job name")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.index[name]; ok {
		return ErrExists{name}
	}
	if n := len(a.segments); n == 0 || len(a.segments[n-1]) == a.segSize {
		a.segments = append(a.segments, make([]Entry, 0, a.segSize))
	}
	seg := len(a.segments) - 1
	a.segments[seg] = append(a.segments[seg], e.deepCopy())
	a.index[name] = slot{seg: seg, off: len(a.segments[seg]) - 1}
	a.count++
	if a.spill != nil && a.spillErr == nil {
		raw, err := json.Marshal(e)
		if err == nil {
			raw = append(raw, '\n')
			_, err = a.spill.Write(raw)
		}
		if err != nil {
			a.spillErr = fmt.Errorf("archive: spill write for %s: %w", name, err)
		}
	}
	// Enforce the residency bound by releasing whole old segments — never
	// the one just written, so a sweep's immediate Remove rollback always
	// still finds its entry.
	for a.maxResident > 0 && a.count > a.maxResident && a.headSeg < seg {
		for i := range a.segments[a.headSeg] {
			old := &a.segments[a.headSeg][i]
			if old.Job.Name == "" {
				continue // tombstone
			}
			delete(a.index, old.Job.Name)
			a.count--
			a.dropped++
		}
		a.segments[a.headSeg] = nil
		a.headSeg++
	}
	return nil
}

// Get returns a deep copy of the named entry.
func (a *Archive) Get(name string) (Entry, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.index[name]
	if !ok {
		return Entry{}, false
	}
	return a.segments[s.seg][s.off].deepCopy(), true
}

// Has reports whether the archive holds the named job.
func (a *Archive) Has(name string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.index[name]
	return ok
}

// Remove tombstones the named entry — the sweep's rollback when its
// conditional hot-store delete lost a race. The slot stays allocated
// (append-mostly storage); only the index entry and the object go. When a
// spill writer is configured the tombstone is spilled too, so reloading
// the JSONL file does not resurrect the entry.
func (a *Archive) Remove(name string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.index[name]
	if !ok {
		return false
	}
	delete(a.index, name)
	a.segments[s.seg][s.off] = Entry{}
	a.count--
	if a.spill != nil && a.spillErr == nil {
		raw, err := json.Marshal(spillLine{Tombstone: name})
		if err == nil {
			raw = append(raw, '\n')
			_, err = a.spill.Write(raw)
		}
		if err != nil {
			a.spillErr = fmt.Errorf("archive: spill tombstone for %s: %w", name, err)
		}
	}
	return true
}

// spillLine is the superset wire form of one JSONL spill line: either a
// full Entry (tombstone empty) or a tombstone marker (entry fields empty).
// Entry lines predate tombstone lines, so a plain Entry unmarshals cleanly.
type spillLine struct {
	Entry
	Tombstone string `json:"tombstone,omitempty"`
}

// Load replays a JSONL spill file into the archive: entry lines are
// re-archived, tombstone lines remove what an earlier line added. Must run
// before the archive is shared and before SetSpill installs a writer for
// the same file (loading through a live spill would re-spill every line).
// Returns how many entries are live after the load. A malformed line
// aborts with its line number — a spill file is append-only, so damage
// means operator intervention, not silent data loss.
func (a *Archive) Load(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line spillLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return 0, fmt.Errorf("archive: spill line %d: %w", lineNo, err)
		}
		if line.Tombstone != "" {
			a.Remove(line.Tombstone)
			continue
		}
		if line.Job.Name == "" {
			return 0, fmt.Errorf("archive: spill line %d: neither entry nor tombstone", lineNo)
		}
		if err := a.Put(line.Entry); err != nil {
			return 0, fmt.Errorf("archive: spill line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("archive: spill scan: %w", err)
	}
	return a.Len(), nil
}

// Names returns the names of all live archived jobs — the durability
// layer's reconcile step uses it to resolve hot-vs-archive conflicts after
// replaying both tiers.
func (a *Archive) Names() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, a.count)
	for name := range a.index {
		out = append(out, name)
	}
	return out
}

// Len returns the archived-entry count resident in memory.
func (a *Archive) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.count
}

// Dropped reports how many entries the MaxResident bound has released
// from memory over the archive's lifetime; Len()+Dropped() is the total
// ever archived (minus explicit Removes).
func (a *Archive) Dropped() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.dropped
}

// List returns copies of the archived jobs keep accepts. Like the store's
// ListFunc, the predicate runs against the internal object under the read
// lock so rejected entries are never copied; keep must not mutate or
// retain its argument.
func (a *Archive) List(keep func(j *api.QuantumJob) bool) []api.QuantumJob {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]api.QuantumJob, 0, 8)
	for _, seg := range a.segments {
		for i := range seg {
			j := &seg[i].Job
			if j.Name == "" { // tombstone
				continue
			}
			if keep == nil || keep(j) {
				out = append(out, j.DeepCopy())
			}
		}
	}
	return out
}

// SpillErr returns the first spill-writer error, if any. A failed spill
// never blocks archiving — the in-memory tier is authoritative — but
// operators should surface this.
func (a *Archive) SpillErr() error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.spillErr
}
