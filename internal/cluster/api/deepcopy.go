package api

import "time"

func copyMeta(m ObjectMeta) ObjectMeta {
	out := m
	if m.Labels != nil {
		out.Labels = make(map[string]string, len(m.Labels))
		for k, v := range m.Labels {
			out.Labels[k] = v
		}
	}
	return out
}

func copyTime(t *time.Time) *time.Time {
	if t == nil {
		return nil
	}
	c := *t
	return &c
}

// DeepCopy returns an independent copy of the node.
func (n Node) DeepCopy() Node {
	out := n
	out.ObjectMeta = copyMeta(n.ObjectMeta)
	out.Spec.BackendJSON = append([]byte(nil), n.Spec.BackendJSON...)
	out.Status.RunningJobs = append([]string(nil), n.Status.RunningJobs...)
	return out
}

// DeepCopy returns an independent copy of the job.
func (j QuantumJob) DeepCopy() QuantumJob {
	out := j
	out.ObjectMeta = copyMeta(j.ObjectMeta)
	out.Status.StartedAt = copyTime(j.Status.StartedAt)
	out.Status.FinishedAt = copyTime(j.Status.FinishedAt)
	return out
}

// DeepCopy returns an independent copy of the result.
func (r Result) DeepCopy() Result {
	out := r
	out.ObjectMeta = copyMeta(r.ObjectMeta)
	if r.Counts != nil {
		out.Counts = make(map[string]int, len(r.Counts))
		for k, v := range r.Counts {
			out.Counts[k] = v
		}
	}
	out.LogLines = append([]string(nil), r.LogLines...)
	return out
}

// DeepCopy returns an independent copy of the tenant configuration.
func (t TenantConfig) DeepCopy() TenantConfig {
	out := t
	out.ObjectMeta = copyMeta(t.ObjectMeta)
	return out
}

// DeepCopy returns an independent copy of the event.
func (e Event) DeepCopy() Event {
	out := e
	out.ObjectMeta = copyMeta(e.ObjectMeta)
	return out
}
