// Package api defines the QRIO cluster's object model — the analogue of
// the Kubernetes API types the paper builds on (§3.1): Nodes that pair a
// quantum backend with classical capacity and carry scheduling labels,
// QuantumJobs with the user's resource and device requirements, execution
// Results (the logs of Fig. 5), and Events for observability.
package api

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// ObjectMeta is common object metadata, in the Kubernetes style.
type ObjectMeta struct {
	Name            string            `json:"name"`
	UID             string            `json:"uid,omitempty"`
	ResourceVersion int64             `json:"resourceVersion,omitempty"`
	CreatedAt       time.Time         `json:"createdAt,omitempty"`
	Labels          map[string]string `json:"labels,omitempty"`
}

// GetName returns the object name (store key).
func (m *ObjectMeta) GetName() string { return m.Name }

// NodePhase is the lifecycle state of a node.
type NodePhase string

const (
	NodeReady    NodePhase = "Ready"
	NodeNotReady NodePhase = "NotReady"
)

// Node is a cluster member hosting one quantum device plus classical
// compute. The vendor's backend calibration (the backend.py analogue) is
// carried as opaque JSON; the Meta Server holds the authoritative copy.
type Node struct {
	ObjectMeta
	Spec   NodeSpec   `json:"spec"`
	Status NodeStatus `json:"status"`
}

// NodeSpec is the vendor-declared part of a node.
type NodeSpec struct {
	// BackendJSON is the serialized device.Backend for this node.
	BackendJSON []byte `json:"backendJSON"`
	// CPUMillis and MemoryMB are the node's classical capacity.
	CPUMillis int64 `json:"cpuMillis"`
	MemoryMB  int64 `json:"memoryMB"`
	// MaxContainers caps how many job containers the node executes
	// concurrently. 0 and 1 both mean the paper's serial one-job-per-node
	// execution; the orchestrator raises it (bounded by the node's
	// classical CPU capacity) when node concurrency is enabled.
	MaxContainers int `json:"maxContainers,omitempty"`
}

// NodeStatus is the cluster-maintained part of a node.
type NodeStatus struct {
	Phase         NodePhase `json:"phase"`
	LastHeartbeat time.Time `json:"lastHeartbeat,omitempty"`
	// RunningJobs are the jobs currently bound to or executing on the node
	// (at most ContainerSlots entries; the paper's architecture keeps this
	// to a single job).
	RunningJobs []string `json:"runningJobs,omitempty"`
	// CPUMillisInUse/MemoryMBInUse track committed classical resources.
	CPUMillisInUse int64 `json:"cpuMillisInUse,omitempty"`
	MemoryMBInUse  int64 `json:"memoryMBInUse,omitempty"`
}

// ContainerSlots is the node's concurrent-container capacity (at least 1).
func (n *Node) ContainerSlots() int {
	if n.Spec.MaxContainers > 1 {
		return n.Spec.MaxContainers
	}
	return 1
}

// HasRunningJob reports whether the named job is bound to the node.
func (s *NodeStatus) HasRunningJob(jobName string) bool {
	for _, j := range s.RunningJobs {
		if j == jobName {
			return true
		}
	}
	return false
}

// Scheduling strategy names (paper §3.4).
type Strategy string

const (
	StrategyFidelity Strategy = "fidelity"
	StrategyTopology Strategy = "topology"
)

// JobPhase is the lifecycle state of a quantum job.
type JobPhase string

const (
	JobPending   JobPhase = "Pending"
	JobScheduled JobPhase = "Scheduled"
	JobRunning   JobPhase = "Running"
	JobSucceeded JobPhase = "Succeeded"
	JobFailed    JobPhase = "Failed"
	// JobCancelled is the terminal phase of a job the user cancelled:
	// pending jobs leave the queue, scheduled jobs give their slot back,
	// and running jobs have their container aborted by the node's kubelet.
	JobCancelled JobPhase = "Cancelled"
)

// JobPhases lists every phase, lifecycle order first, terminals last —
// the authoritative set for clients validating filter values.
var JobPhases = []JobPhase{JobPending, JobScheduled, JobRunning, JobSucceeded, JobFailed, JobCancelled}

// Terminal reports whether the phase is final.
func (p JobPhase) Terminal() bool {
	return p == JobSucceeded || p == JobFailed || p == JobCancelled
}

// ResourceRequirements are the classical resources a job requests
// (the CPU/Memory fields of the visualizer's step-1 form, Fig. 4a).
type ResourceRequirements struct {
	CPUMillis int64 `json:"cpuMillis,omitempty"`
	MemoryMB  int64 `json:"memoryMB,omitempty"`
}

// DeviceRequirements are the quantum device characteristics a job filters
// on (the step-2 form, Fig. 4b). Zero values mean "no constraint".
type DeviceRequirements struct {
	MinQubits     int     `json:"minQubits,omitempty"`
	MaxAvg2QError float64 `json:"maxAvg2qError,omitempty"`
	MaxReadoutErr float64 `json:"maxReadoutError,omitempty"`
	MinT1us       float64 `json:"minT1us,omitempty"`
	MinT2us       float64 `json:"minT2us,omitempty"`
}

// DefaultTenant is the tenant jobs belong to when the submitter names
// none — the single-user behaviour of the paper's deployment.
const DefaultTenant = "default"

// DefaultShots is the shot count applied when a submission names none.
// Every intake layer (master, cluster state, gateway quota pricing) uses
// this one constant so admission's qubit-second estimate can never drift
// from the stored job's demand.
const DefaultShots = 1024

// ValidTenantName reports whether a tenant identifier is acceptable: a
// DNS-label-style token (lowercase alphanumerics and dashes, neither
// leading nor trailing, at most 63 characters). Tenant names appear in
// URLs, metrics and quota configuration, so the charset is kept strict.
func ValidTenantName(t string) bool {
	if t == "" || len(t) > 63 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '-':
			if i == 0 || i == len(t)-1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// TenantQuota bounds one tenant's admitted-but-unfinished work. Zero
// values mean "unlimited" so the default configuration admits everything,
// exactly like the pre-tenancy gateway.
type TenantQuota struct {
	// MaxPending caps jobs sitting in the Pending phase.
	MaxPending int `json:"maxPending,omitempty"`
	// MaxActive caps jobs holding node resources (Scheduled or Running).
	// It is enforced twice: the gateway rejects submissions while the
	// tenant is at the cap, and the scheduler never dispatches a pass
	// past a tenant's remaining active budget (so a burst admitted while
	// idle still cannot exceed it once bound).
	MaxActive int `json:"maxActive,omitempty"`
	// MaxQubitSeconds caps the summed qubit-second demand of every
	// non-terminal job (see EstimateQubitSeconds).
	MaxQubitSeconds float64 `json:"maxQubitSeconds,omitempty"`
}

// Unlimited reports whether the quota admits everything.
func (q TenantQuota) Unlimited() bool {
	return q.MaxPending <= 0 && q.MaxActive <= 0 && q.MaxQubitSeconds <= 0
}

// TenantQuotaPolicy resolves per-tenant quotas: an explicit entry wins,
// everyone else gets the default. The zero policy admits everything —
// the pre-tenancy behaviour.
type TenantQuotaPolicy struct {
	// Default applies to tenants without an explicit entry.
	Default TenantQuota `json:"default,omitempty"`
	// Tenants holds per-tenant overrides.
	Tenants map[string]TenantQuota `json:"tenants,omitempty"`
}

// For returns the quota governing one tenant.
func (p TenantQuotaPolicy) For(tenant string) TenantQuota {
	if q, ok := p.Tenants[tenant]; ok {
		return q
	}
	return p.Default
}

// TenantRateLimit bounds one tenant's submission *arrival rate* at the
// gateway with a token bucket — distinct from TenantQuota, which bounds
// admitted-but-unfinished work. The zero value means "unlimited", so the
// default configuration rate-limits nobody.
type TenantRateLimit struct {
	// SubmitPerSecond is the sustained refill rate in submissions/second.
	// Zero or negative disables rate limiting for the tenant.
	SubmitPerSecond float64 `json:"submitPerSecond,omitempty"`
	// Burst caps the bucket: how many submissions may arrive back-to-back
	// after an idle period. Zero defaults to max(1, ceil(SubmitPerSecond)).
	Burst int `json:"burst,omitempty"`
}

// Unlimited reports whether the rate limit admits everything.
func (r TenantRateLimit) Unlimited() bool { return r.SubmitPerSecond <= 0 }

// TenantRateLimitPolicy resolves per-tenant rate limits, mirroring
// TenantQuotaPolicy: an explicit entry wins, everyone else gets the
// default, and the zero policy limits nobody.
type TenantRateLimitPolicy struct {
	// Default applies to tenants without an explicit entry.
	Default TenantRateLimit `json:"default,omitempty"`
	// Tenants holds per-tenant overrides.
	Tenants map[string]TenantRateLimit `json:"tenants,omitempty"`
}

// For returns the rate limit governing one tenant.
func (p TenantRateLimitPolicy) For(tenant string) TenantRateLimit {
	if r, ok := p.Tenants[tenant]; ok {
		return r
	}
	return p.Default
}

// MaxTenantWeight bounds operator-set fair-share weights; beyond this a
// weight is configuration error, not a meaningful share.
const MaxTenantWeight = 1_000_000

// TenantConfig is one tenant's operator-set scheduling configuration —
// the store-backed object behind PUT /v1/tenants/{name}. Because it lives
// in a regular cluster store, updates reach the scheduler and admission
// layers without a daemon restart and flow through the same write-ahead
// log as every other object, so they survive restarts. A TenantConfig
// fully overrides the deployment's static flag configuration for its
// tenant: Weight replaces the TenantWeights entry (0 means the default
// weight of 1), Quota replaces the TenantQuotaPolicy resolution and
// RateLimit replaces the TenantRateLimitPolicy resolution (zero fields
// mean unlimited, as everywhere).
type TenantConfig struct {
	ObjectMeta
	Weight    int             `json:"weight,omitempty"`
	Quota     TenantQuota     `json:"quota,omitempty"`
	RateLimit TenantRateLimit `json:"rateLimit,omitempty"`
}

// Validate checks a tenant configuration (Name carries the tenant).
func (t *TenantConfig) Validate() error {
	if !ValidTenantName(t.Name) {
		return fmt.Errorf("api: %q is not a valid tenant name", t.Name)
	}
	if t.Weight < 0 || t.Weight > MaxTenantWeight {
		return fmt.Errorf("api: tenant %s weight %d out of [0, %d]", t.Name, t.Weight, MaxTenantWeight)
	}
	if t.Quota.MaxPending < 0 || t.Quota.MaxActive < 0 {
		return fmt.Errorf("api: tenant %s quota bounds must be non-negative", t.Name)
	}
	if t.Quota.MaxQubitSeconds < 0 || math.IsNaN(t.Quota.MaxQubitSeconds) || math.IsInf(t.Quota.MaxQubitSeconds, 0) {
		return fmt.Errorf("api: tenant %s qubit-second bound %v is not a valid limit", t.Name, t.Quota.MaxQubitSeconds)
	}
	if math.IsNaN(t.RateLimit.SubmitPerSecond) || math.IsInf(t.RateLimit.SubmitPerSecond, 0) {
		return fmt.Errorf("api: tenant %s rate %v is not a valid limit", t.Name, t.RateLimit.SubmitPerSecond)
	}
	if t.RateLimit.Burst < 0 {
		return fmt.Errorf("api: tenant %s rate-limit burst must be non-negative", t.Name)
	}
	return nil
}

// secondsPerShot is the coarse device-time model behind qubit-second
// accounting: one millisecond of device wall-clock per shot, the order of
// magnitude of a superconducting-qubit execution cycle incl. readout.
const secondsPerShot = 1e-3

// EstimateQubitSeconds models a job's device-time demand for quota
// accounting: circuit width × shots × a nominal per-shot duration. It is
// a capacity-planning estimate, not a measurement — what matters for
// fairness is that every tenant's jobs are costed by the same rule.
func EstimateQubitSeconds(qubits, shots int) float64 {
	if qubits < 1 {
		qubits = 1
	}
	if shots < 1 {
		shots = 1
	}
	return float64(qubits) * float64(shots) * secondsPerShot
}

// QubitSecondsDemand is the job's quota-accounting weight, derived from
// its stored spec (MinQubits carries the circuit width after master
// intake; Shots is defaulted on submission).
func (s *JobSpec) QubitSecondsDemand() float64 {
	return EstimateQubitSeconds(s.Requirements.MinQubits, s.Shots)
}

// JobSpec is the user-declared job description.
type JobSpec struct {
	// Tenant names the submitting principal for quota accounting and
	// weighted fair scheduling. Empty is normalised to DefaultTenant on
	// submission.
	Tenant string `json:"tenant,omitempty"`
	// Image names the containerised job bundle in the registry; the
	// Master Server fills it in after the build+push step (§3.3).
	Image string `json:"image,omitempty"`
	// QASM is the user's circuit source (§3.2: jobs are submitted as
	// QASM files).
	QASM  string `json:"qasm"`
	Shots int    `json:"shots,omitempty"`

	Resources    ResourceRequirements `json:"resources,omitempty"`
	Requirements DeviceRequirements   `json:"requirements,omitempty"`

	// Strategy selects the ranking mode; exactly one of TargetFidelity /
	// TopologyQASM is meaningful (Table 1).
	Strategy       Strategy `json:"strategy"`
	TargetFidelity float64  `json:"targetFidelity,omitempty"`
	// TopologyQASM is the user topology converted to a pseudo-circuit
	// (one cx per requested edge, §3.2).
	TopologyQASM string `json:"topologyQASM,omitempty"`
}

// JobStatus is maintained by the scheduler, kubelets and the controller.
type JobStatus struct {
	Phase    JobPhase `json:"phase"`
	Node     string   `json:"node,omitempty"`
	Score    float64  `json:"score,omitempty"`
	Attempts int      `json:"attempts,omitempty"`
	Message  string   `json:"message,omitempty"`
	// CancelRequested marks a Running job whose user asked for
	// cancellation; the owning kubelet aborts the container and moves the
	// job to JobCancelled. Pending/Scheduled jobs cancel without it.
	CancelRequested bool `json:"cancelRequested,omitempty"`

	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
}

// QuantumJob is the unit of scheduling.
type QuantumJob struct {
	ObjectMeta
	Spec   JobSpec   `json:"spec"`
	Status JobStatus `json:"status"`
}

// Validate checks a job submission.
func (j *QuantumJob) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("api: job has no name")
	}
	if j.Spec.QASM == "" {
		return fmt.Errorf("api: job %s has no circuit", j.Name)
	}
	switch j.Spec.Strategy {
	case StrategyFidelity:
		if j.Spec.TargetFidelity <= 0 || j.Spec.TargetFidelity > 1 {
			return fmt.Errorf("api: job %s fidelity target %g out of (0,1]", j.Name, j.Spec.TargetFidelity)
		}
	case StrategyTopology:
		if j.Spec.TopologyQASM == "" {
			return fmt.Errorf("api: job %s topology strategy without topology circuit", j.Name)
		}
	default:
		return fmt.Errorf("api: job %s has unknown strategy %q", j.Name, j.Spec.Strategy)
	}
	if j.Spec.Shots < 0 {
		return fmt.Errorf("api: job %s negative shots", j.Name)
	}
	if j.Spec.Tenant != "" && !ValidTenantName(j.Spec.Tenant) {
		return fmt.Errorf("api: job %s tenant %q is not a valid tenant name", j.Name, j.Spec.Tenant)
	}
	return nil
}

// Result holds a finished job's execution record — the log content the
// visualizer shows (Fig. 5).
type Result struct {
	ObjectMeta
	JobName  string         `json:"jobName"`
	Node     string         `json:"node"`
	Counts   map[string]int `json:"counts,omitempty"`
	Fidelity float64        `json:"fidelity,omitempty"`
	// LogLines is the human-readable execution log.
	LogLines []string `json:"logLines,omitempty"`
	// TranspiledQASM records the executable actually run on the device.
	TranspiledQASM string `json:"transpiledQASM,omitempty"`
	ElapsedMS      int64  `json:"elapsedMS,omitempty"`
}

// Event records a cluster occurrence for observability.
type Event struct {
	ObjectMeta
	Kind    string    `json:"kind"`  // object kind: Job, Node, ...
	About   string    `json:"about"` // object name
	Reason  string    `json:"reason"`
	Message string    `json:"message"`
	Time    time.Time `json:"time"`
}

// Node label keys published for scheduler filtering (§3.1: "we label each
// node in the cluster with its properties").
const (
	LabelQubits     = "qrio.io/qubits"
	LabelAvg2QErr   = "qrio.io/avg-2q-error"
	LabelAvgT1us    = "qrio.io/avg-t1-us"
	LabelAvgT2us    = "qrio.io/avg-t2-us"
	LabelAvgReadout = "qrio.io/avg-readout-error"
	LabelCPUMillis  = "qrio.io/cpu-millis"
	LabelMemoryMB   = "qrio.io/memory-mb"
)

// FormatFloatLabel renders a float for a label value.
func FormatFloatLabel(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// ParseFloatLabel parses a float label; returns ok=false on absence/garbage.
func ParseFloatLabel(labels map[string]string, key string) (float64, bool) {
	s, ok := labels[key]
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ParseIntLabel parses an integer label.
func ParseIntLabel(labels map[string]string, key string) (int64, bool) {
	s, ok := labels[key]
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
