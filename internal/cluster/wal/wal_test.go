package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeRecords(t *testing.T, path string, payloads ...[]byte) {
	t.Helper()
	w, err := OpenWriter(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendScanRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.wal")
	payloads := [][]byte{[]byte("one"), []byte(""), []byte("three-3"), bytes.Repeat([]byte("x"), 4096)}
	writeRecords(t, path, payloads...)

	res, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("clean file reported truncated")
	}
	if len(res.Records) != len(payloads) {
		t.Fatalf("records = %d, want %d", len(res.Records), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(res.Records[i], p) {
			t.Fatalf("record %d = %q, want %q", i, res.Records[i], p)
		}
	}
	info, _ := os.Stat(path)
	if res.ValidBytes != info.Size() {
		t.Fatalf("ValidBytes = %d, file size %d", res.ValidBytes, info.Size())
	}
}

func TestScanMissingFile(t *testing.T) {
	res, err := ScanFile(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil {
		t.Fatalf("missing file should scan empty, got %v", err)
	}
	if len(res.Records) != 0 || res.Truncated {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestTruncatedTail simulates a crash mid-append: every proper prefix cut
// of the final record must recover the earlier records and report the
// valid length for safe truncation.
func TestTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	writeRecords(t, full, []byte("alpha"), []byte("beta"))
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := ScanFile(full)
	firstEnd := first.Offsets[1] // end of record 0 == start of record 1

	for cut := len(raw) - 1; cut > int(firstEnd); cut-- {
		res := Scan(raw[:cut])
		if !res.Truncated {
			t.Fatalf("cut=%d: torn tail not detected", cut)
		}
		if len(res.Records) != 1 || !bytes.Equal(res.Records[0], []byte("alpha")) {
			t.Fatalf("cut=%d: recovered %d records", cut, len(res.Records))
		}
		if res.ValidBytes != firstEnd {
			t.Fatalf("cut=%d: ValidBytes=%d want %d", cut, res.ValidBytes, firstEnd)
		}
	}
}

// TestCRCMismatch flips one payload byte: the damaged record and
// everything after it must be dropped, everything before it kept.
func TestCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crc.wal")
	writeRecords(t, path, []byte("keep-me"), []byte("corrupt-me"), []byte("unreachable"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	scan := Scan(raw)
	// Flip a byte inside record 1's payload.
	corruptAt := scan.Offsets[1] + frameHeader
	raw[corruptAt] ^= 0xFF
	res := Scan(raw)
	if !res.Truncated {
		t.Fatal("corruption not detected")
	}
	if len(res.Records) != 1 || !bytes.Equal(res.Records[0], []byte("keep-me")) {
		t.Fatalf("recovered %d records, want just the clean prefix", len(res.Records))
	}
	if res.ValidBytes != scan.Offsets[1] {
		t.Fatalf("ValidBytes=%d want %d", res.ValidBytes, scan.Offsets[1])
	}
}

func TestTruncateFileThenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	writeRecords(t, path, []byte("good"))
	// Simulate a torn append.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{9, 9, 9})
	f.Close()
	res, _ := ScanFile(path)
	if !res.Truncated {
		t.Fatal("expected torn tail")
	}
	if err := TruncateFile(path, res.ValidBytes); err != nil {
		t.Fatal(err)
	}
	// The safe-truncated file accepts appends and scans clean.
	w, err := OpenWriter(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	res, err = ScanFile(path)
	if err != nil || res.Truncated || len(res.Records) != 2 {
		t.Fatalf("after truncate+append: %+v err=%v", res, err)
	}
}

func TestRotateSwitchesFiles(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "g0.wal"), filepath.Join(dir, "g1.wal")
	w, err := OpenWriter(a, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("old-gen")); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(b); err != nil {
		t.Fatal(err)
	}
	if w.Path() != b {
		t.Fatalf("Path=%s want %s", w.Path(), b)
	}
	if err := w.Append([]byte("new-gen")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	ra, _ := ScanFile(a)
	rb, _ := ScanFile(b)
	if len(ra.Records) != 1 || !bytes.Equal(ra.Records[0], []byte("old-gen")) {
		t.Fatalf("old file: %+v", ra)
	}
	if len(rb.Records) != 1 || !bytes.Equal(rb.Records[0], []byte("new-gen")) {
		t.Fatalf("new file: %+v", rb)
	}
}

func TestWriteFileAtomicAndReadChecked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	payload := []byte(`{"gen":7}`)
	if err := WriteFileAtomic(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileChecked(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
	// Overwrite is atomic: the new content fully replaces the old.
	next := []byte(`{"gen":8,"more":"data"}`)
	if err := WriteFileAtomic(path, next); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadFileChecked(path)
	if !bytes.Equal(got, next) {
		t.Fatalf("after rewrite got %q", got)
	}
}

func TestReadFileCheckedRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := WriteFileAtomic(path, []byte(`{"gen":1}`)); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)

	cases := map[string][]byte{
		"flipped payload byte": append(append([]byte{}, raw[:frameHeader]...), func() []byte {
			p := append([]byte{}, raw[frameHeader:]...)
			p[0] ^= 1
			return p
		}()...),
		"truncated":     raw[:len(raw)-2],
		"trailing junk": append(append([]byte{}, raw...), 0xAB),
		"empty file":    {},
		"header only":   raw[:frameHeader-1],
	}
	for name, data := range cases {
		p := filepath.Join(dir, "case")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFileChecked(p); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err=%v, want ErrCorrupt", name, err)
		}
	}
	if _, err := ReadFileChecked(filepath.Join(dir, "nope")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
}

// TestOversizedLengthRejected: a frame claiming a payload beyond
// MaxRecordBytes must read as a torn tail, not a giant allocation.
func TestOversizedLengthRejected(t *testing.T) {
	var buf []byte
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(MaxRecordBytes+1))
	buf = append(buf, hdr[:]...)
	buf = append(buf, []byte("whatever")...)
	res := Scan(buf)
	if !res.Truncated || len(res.Records) != 0 || res.ValidBytes != 0 {
		t.Fatalf("oversized frame accepted: %+v", res)
	}
}

func TestWriterLatchesErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "latch.wal")
	w, err := OpenWriter(path, false)
	if err != nil {
		t.Fatal(err)
	}
	over := bytes.Repeat([]byte("x"), MaxRecordBytes+1)
	if err := w.Append(over); err == nil {
		t.Fatal("oversized append accepted")
	}
	if w.Err() == nil {
		t.Fatal("error not latched")
	}
	// Rotation onto a fresh file clears the latch.
	if err := w.Rotate(filepath.Join(dir, "latch2.wal")); err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatalf("latch survived rotation: %v", w.Err())
	}
	if err := w.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	w.Close()
}

// FuzzWALReplay drives the scanner with arbitrary bytes: it must never
// panic, must report consistent (ValidBytes, Records, Truncated), and a
// reported-clean file must re-scan identically after a write-back.
func FuzzWALReplay(f *testing.F) {
	seed := func(payloads ...[]byte) []byte {
		var buf []byte
		for _, p := range payloads {
			buf = appendFrame(buf, p)
		}
		return buf
	}
	f.Add([]byte{})
	f.Add(seed([]byte("hello")))
	f.Add(seed([]byte("a"), []byte("bb"), []byte("ccc")))
	f.Add(seed([]byte(`{"t":"ADDED","v":1,"o":{}}`)))
	f.Add(seed([]byte("torn"))[:5])
	damaged := seed([]byte("flip-me"))
	damaged[frameHeader] ^= 0x01
	f.Add(damaged)
	f.Fuzz(func(t *testing.T, data []byte) {
		res := Scan(data)
		if res.ValidBytes < 0 || res.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d out of range [0,%d]", res.ValidBytes, len(data))
		}
		if len(res.Records) != len(res.Offsets) {
			t.Fatalf("records/offsets mismatch: %d vs %d", len(res.Records), len(res.Offsets))
		}
		if !res.Truncated && res.ValidBytes != int64(len(data)) {
			t.Fatalf("clean scan consumed %d of %d bytes", res.ValidBytes, len(data))
		}
		// The valid prefix must itself scan clean with identical records —
		// this is exactly what boot-time safe-truncation relies on.
		again := Scan(data[:res.ValidBytes])
		if again.Truncated || len(again.Records) != len(res.Records) {
			t.Fatalf("valid prefix rescan diverged: %+v vs %+v", again, res)
		}
		for i := range again.Records {
			if !bytes.Equal(again.Records[i], res.Records[i]) {
				t.Fatalf("record %d diverged on rescan", i)
			}
		}
	})
}
