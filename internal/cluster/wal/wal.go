// Package wal provides the durable byte substrate under QRIO's cluster
// state: CRC-framed append-only log files and atomically-replaced
// snapshot files. It knows nothing about stores or jobs — it moves
// checksummed payloads to disk and back, and recovers the longest valid
// prefix of a log whose tail a crash tore.
//
// Frame layout (little-endian):
//
//	[4B payload length][4B CRC-32C of payload][payload]
//
// A torn tail — a partial frame, or a frame whose checksum fails — ends
// the valid prefix. Scan reports where the prefix ends so the caller can
// safe-truncate the file and keep appending; everything before the tear
// is intact because frames are only ever appended.
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"qrio/internal/faults"
)

// frameHeader is the fixed per-record overhead: length + checksum.
const frameHeader = 8

// MaxRecordBytes bounds a single record. A length field above it marks
// the frame corrupt rather than asking the reader to allocate garbage.
const MaxRecordBytes = 64 << 20

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a checked file whose content fails verification —
// a snapshot with a bad checksum or framing.
var ErrCorrupt = errors.New("wal: corrupt file")

// appendFrame appends one framed record to buf and returns the result.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Writer appends framed records to one log file. Appends are serialised
// by an internal mutex, so a Writer can be shared by concurrent
// producers (QRIO shares one per store shard, called under that shard's
// lock). The first I/O error is latched: later appends return it without
// touching the file, mirroring the archive spill contract — durability
// degrades loudly, never by silently interleaving half-written frames.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	fsync   bool
	err     error
	records int64
	bytes   int64
	scratch []byte
	// faults injects write failures ahead of real I/O (the wal.append
	// point); injected errors latch exactly like disk errors. Nil resolves
	// to faults.Default, so the daemon's -faults flag reaches production
	// writers; tests inject private registries via SetFaults.
	faults *faults.Registry
	// observe, when set, is called after every successful Append with the
	// framed byte count and the fsync duration (negative when the writer
	// does not fsync) — the metrics seam. Set before traffic.
	observe func(frameBytes int, fsync time.Duration)
}

// OpenWriter opens (creating if needed) a log file for appending. With
// fsync set, every Append is synced to stable storage before returning —
// the machine-crash guarantee; without it, records survive process death
// (the write syscall completed) but not power loss.
func OpenWriter(path string, fsync bool) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, path: path, fsync: fsync}, nil
}

// SetFaults points the writer at a fault-injection registry (tests use
// private registries; nil keeps faults.Default). Call before traffic.
func (w *Writer) SetFaults(r *faults.Registry) {
	w.mu.Lock()
	w.faults = r
	w.mu.Unlock()
}

// SetObserver installs the append observer (the durability manager's
// metrics seam): fn runs under the writer's lock after every successful
// Append with the framed byte count and fsync duration (negative when
// the writer does not fsync), so it must be fast and must not call back
// into the writer. Call before traffic; nil disables.
func (w *Writer) SetObserver(fn func(frameBytes int, fsync time.Duration)) {
	w.mu.Lock()
	w.observe = fn
	w.mu.Unlock()
}

// Append writes one framed record (and syncs it, if the writer fsyncs).
func (w *Writer) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if len(payload) > MaxRecordBytes {
		// Scan refuses frames above MaxRecordBytes, so writing one would
		// poison the log: everything after it becomes unreachable.
		w.err = fmt.Errorf("wal: record of %d bytes exceeds limit in %s", len(payload), w.path)
		return w.err
	}
	if err := w.faults.Fire(context.Background(), faults.PointWALAppend); err != nil {
		w.err = fmt.Errorf("wal: append to %s: %w", w.path, err)
		return w.err
	}
	w.scratch = appendFrame(w.scratch[:0], payload)
	if _, err := w.f.Write(w.scratch); err != nil {
		w.err = fmt.Errorf("wal: append to %s: %w", w.path, err)
		return w.err
	}
	syncDur := time.Duration(-1)
	if w.fsync {
		start := time.Time{}
		if w.observe != nil {
			start = time.Now()
		}
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("wal: fsync %s: %w", w.path, err)
			return w.err
		}
		if w.observe != nil {
			syncDur = time.Since(start)
		}
	}
	w.records++
	w.bytes += int64(len(w.scratch))
	if w.observe != nil {
		w.observe(len(w.scratch), syncDur)
	}
	return nil
}

// Rotate atomically redirects the writer to a new file: records appended
// before the call are fully in the old file, records after it fully in
// the new one — the cut a snapshot relies on to know which generations
// its marks cover. The latched error is cleared: a fresh file is a fresh
// chance (a full disk may have been cleaned up between generations).
func (w *Writer) Rotate(newPath string) error {
	f, err := os.OpenFile(newPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.mu.Lock()
	old := w.f
	w.f = f
	w.path = newPath
	w.err = nil
	// Stats count the current file — the replay debt since the last
	// rotation — so a snapshot visibly resets the operator's WAL lag.
	w.records = 0
	w.bytes = 0
	w.mu.Unlock()
	return old.Close()
}

// Path returns the file currently appended to.
func (w *Writer) Path() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.path
}

// Err returns the latched write error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats returns how many records and bytes this writer has appended.
func (w *Writer) Stats() (records, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.bytes
}

// Sync flushes the file to stable storage regardless of the fsync mode.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.f.Sync()
}

// Close syncs and closes the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil && w.err == nil {
		w.err = err
	}
	return w.f.Close()
}

// ScanResult is the outcome of reading one log file.
type ScanResult struct {
	// Records are the payloads of every intact frame, in append order.
	Records [][]byte
	// Offsets[i] is the file offset at which Records[i]'s frame starts.
	Offsets []int64
	// ValidBytes is the length of the intact prefix. When Truncated, the
	// caller should truncate the file here before appending again.
	ValidBytes int64
	// Truncated reports that the file ends in a torn or corrupt frame
	// (the expected state after a crash mid-append).
	Truncated bool
}

// ScanFile reads every intact record of a log file. A missing file is an
// empty log, not an error. A torn or corrupt tail ends the scan with
// Truncated set; the records before it are returned.
func ScanFile(path string) (ScanResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ScanResult{}, nil
		}
		return ScanResult{}, err
	}
	return Scan(raw), nil
}

// Scan parses framed records out of a byte slice (the in-memory core of
// ScanFile, shared with the fuzzer). Returned payloads alias raw.
func Scan(raw []byte) ScanResult {
	var res ScanResult
	off := int64(0)
	for {
		rest := raw[off:]
		if len(rest) == 0 {
			return res
		}
		if len(rest) < frameHeader {
			res.Truncated = true
			res.ValidBytes = off
			return res
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > MaxRecordBytes || int64(len(rest)) < frameHeader+n {
			res.Truncated = true
			res.ValidBytes = off
			return res
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			res.Truncated = true
			res.ValidBytes = off
			return res
		}
		res.Records = append(res.Records, payload)
		res.Offsets = append(res.Offsets, off)
		off += frameHeader + n
		res.ValidBytes = off
	}
}

// TruncateFile cuts a log file back to n bytes — the safe-truncate step
// after a scan found a torn tail.
func TruncateFile(path string, n int64) error {
	return os.Truncate(path, n)
}

// WriteFileAtomic replaces path with a single-frame file holding payload,
// using the write-temp + fsync + rename protocol: a crash at any point
// leaves either the old complete file or the new complete file, never a
// half-written one. The containing directory is synced so the rename
// itself is durable.
func WriteFileAtomic(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(appendFrame(nil, payload)); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// ReadFileChecked reads a file written by WriteFileAtomic, verifying it
// holds exactly one intact frame. A missing file returns os.ErrNotExist;
// any framing or checksum failure returns ErrCorrupt.
func ReadFileChecked(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	res := Scan(raw)
	if res.Truncated || len(res.Records) != 1 || res.ValidBytes != int64(len(raw)) {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, path)
	}
	return res.Records[0], nil
}

// SyncDir fsyncs a directory, making renames and creates within it
// durable. Best effort on filesystems that reject directory fsync.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, io.EOF) {
		// Some filesystems (and some CI sandboxes) refuse to fsync a
		// directory handle; the rename is still ordered on the common
		// local filesystems QRIO deploys on.
		if errors.Is(err, os.ErrInvalid) {
			return nil
		}
		return err
	}
	return nil
}
