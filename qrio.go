// Package qrio is the public API of the QRIO reproduction — a Quantum
// Resource Infrastructure Orchestrator (Chakraborty et al., IISWC 2024):
// a Kubernetes-style cloud resource manager for quantum devices.
//
// A QRIO deployment manages a fleet of quantum backends (real devices in
// the paper's vision; high-fidelity simulated devices here). Users submit
// OpenQASM 2.0 circuits together with classical resource requests, device
// characteristic bounds, and one of two device-selection strategies:
//
//   - a fidelity requirement — QRIO estimates each candidate device's
//     execution fidelity with classically simulable Clifford "canary"
//     circuits and picks the closest match, or
//   - a topology requirement — QRIO scores devices by Mapomatic-style
//     subgraph matching against the user's desired qubit connectivity.
//
// The orchestrator filters devices on published calibration labels
// (qubits, average two-qubit error, T1/T2, readout, CPU/memory), ranks the
// survivors through the Meta Server, containerises the job via the Master
// Server and registry, executes it on the chosen node, and serves the
// resulting logs.
//
// # Quick start
//
//	fleet, _ := qrio.GenerateFleet(qrio.DefaultFleetSpec())
//	q, _ := qrio.New(qrio.Config{Backends: fleet})
//	q.Start()
//	defer q.Stop()
//
//	job, res, _ := q.SubmitAndWait(qrio.SubmitRequest{
//		JobName:        "bv10",
//		QASM:           myQASM,
//		Strategy:       qrio.StrategyFidelity,
//		TargetFidelity: 1.0,
//	}, time.Minute)
//	fmt.Println(job.Status.Node, res.Fidelity)
//
// # The /v1 API
//
// A deployment is served to remote users through the unified, versioned
// gateway (NewGateway; the qrio daemon mounts it at /v1): job routes
// (POST /v1/jobs and /v1/jobs/batch, GET /v1/jobs with phase/node/strategy
// filters, an archived=true history merge and limit/continue pagination,
// GET and DELETE /v1/jobs/{name}, GET /v1/jobs/{name}/logs and /events),
// node routes (GET/POST /v1/nodes, GET/DELETE /v1/nodes/{name}),
// Meta-Server scoring (GET /v1/score and /v1/score/batch) and a live
// event stream (GET /v1/watch, server-sent events fanned out from the
// cluster's broadcast hub). DELETE cancels a job at any lifecycle stage
// — pending jobs leave the queue, scheduled jobs release their slot,
// running jobs have their container aborted on the node — landing the
// terminal JobCancelled phase.
//
// Watch streams are resumable: every SSE event carries an opaque resume
// token, and GET /v1/watch?resume=<token> replays exactly the
// transitions a dropped client missed (from a bounded per-shard version
// journal) instead of re-sending the snapshot. A token whose position
// has been compacted away is answered with the 410 "compacted" code; the
// client then falls back to a fresh watch, whose connect-time SYNC
// events re-establish current state. client.WatchOptions.Reconnect turns
// that whole dance into a self-healing stream (Client.Wait and qrioctl
// watch use it).
//
// Every error response carries one structured envelope,
// {"error":{"code":...,"message":...}}, with machine-readable codes:
// "invalid" (400, malformed or rejected request), "not_found" (404),
// "conflict" (409, duplicate submission or cancelling a finished job —
// resident or archived), "compacted" (410, stale watch resume token),
// "unschedulable" (422, no device in the fleet can ever satisfy the
// job's requirements), "quota_exceeded" (429, the tenant is over its
// admission quota), "rate_limited" (429, the tenant is submitting faster
// than its token-bucket arrival rate), "overloaded" (503, the gateway
// shed the request at its global in-flight cap) and "draining" (503, the
// daemon is shutting down gracefully and takes no new work). Both 429
// codes carry a Retry-After header; client.IsRateLimited, IsOverloaded,
// IsDraining and RetryAfter expose them programmatically.
//
// # Resilience
//
// Dependency calls are defended end to end. The shared HTTP client
// (httpx.NewClient) sets explicit timeouts, and DoJSONRetry retries
// idempotent requests on 429/5xx/transport errors with exponential
// backoff, full jitter and Retry-After honouring. The scheduler's
// Meta-Server scoring path runs behind a circuit breaker: consecutive
// scoring failures open it, scheduling degrades to staleness-bounded
// cached scores (then a calibration-label heuristic) instead of
// starving, a SchedulingDegraded event records each outage, and
// half-open probes restore live scoring when the dependency heals. On
// SIGTERM the daemon drains: intake answers 503 draining, in-flight
// requests and containers finish, unclaimed scheduled jobs requeue, and
// durable deployments end with a compacted snapshot. Package
// internal/faults provides the deterministic fault-injection seams (the
// daemon's -faults flag) the chaos harness rehearses all of this with.
//
// # Retention
//
// Config.Retention bounds how long terminal jobs stay resident: the
// lifecycle controller sweeps older/overflowing ones, with their event
// trails, into an append-mostly archive tier (optionally spilled to a
// JSONL file), keeping the hot store — and every cost proportional to it
// — flat under sustained load. History stays queryable through
// GET /v1/jobs?archived=true and the by-name fallthrough; the zero
// policy keeps today's keep-everything behaviour.
//
// # Multi-tenancy
//
// Submissions are charged to a tenant (SubmitRequest.Tenant, defaulted
// to "default"). Config.TenantQuotas bounds each tenant's admitted work
// — pending jobs, active jobs, estimated qubit-seconds in flight — and
// the gateway rejects over-quota submissions with the quota_exceeded
// envelope. Config.TenantWeights skews the scheduler's weighted fair
// queue: with batched dispatch, backlogged tenants share binds in
// proportion to their weights regardless of submission rates, and the
// serial scheduler stays strict FIFO. GET /v1/tenants (Client.Tenants,
// qrioctl tenants) reports per-tenant usage, weight and quota.
//
// Weights, quotas and rate limits hot-reload: PUT /v1/tenants/{name}
// (Client.SetTenant, qrioctl tenants set) replaces a tenant's weight,
// quota and submission rate limit atomically — one store mutation, one
// watch event — effective from the next scheduling pass, admission check
// and rate-limit draw, no restart. Overrides are durable when the
// deployment runs with durability enabled.
//
// # Durability & restarts
//
// Config.Durability (the qrio daemon's -data-dir flag) makes cluster
// state crash-recoverable. Every store mutation is appended to a
// per-shard, CRC-framed write-ahead log; a background loop (and POST
// /v1/admin/snapshot) periodically compacts the logs into one atomically
// replaced snapshot file; the archive tier spills to archive.jsonl in the
// same directory. On boot, New restores the snapshot, replays the logs
// past it (re-firing the same store hooks that feed the live indexes, so
// queues, usage and watch journals rebuild exactly), reloads the archive,
// and re-queues jobs that were Running when the process died — their
// containers died with it. Watch resume tokens from before the crash
// either replay exactly or answer the typed 410 "compacted" code.
// GET /v1/admin/durability (Client.Durability, qrioctl admin durability)
// reports WAL lag, snapshot age, boot replay statistics, any latched
// WAL/spill errors and the clears a snapshot healed; the same summary
// rides on GET /v1/health as the durability component. The zero Options
// keep the cluster fully in-memory — the prior behaviour.
//
// # Observability
//
// Config.Metrics accepts a metrics registry (NewMetricsRegistry); with
// one set, every layer registers its families at wiring time — scheduler
// pass latency and outcomes, submit→bind latency, queue depths, tenant
// binds and quota rejections, score-cache activity, per-route gateway
// traffic, watch-hub fanout, WAL/snapshot/archive health and
// fault-injection fire counts — and the gateway serves the registry as
// GET /v1/metrics in Prometheus text exposition format (deterministic:
// families, children and labels are sorted). GET /v1/health returns the
// typed per-component health payload (/v1/healthz stays as a deprecated
// alias for one cycle). Client.Health, Client.Metrics and
// Client.MetricFamilies, plus qrioctl health and qrioctl metrics
// [-family], consume both. A nil Config.Metrics (the default) keeps
// every hot path at a single branch and /v1/metrics answering 404.
//
// The Client type (package qrio/client) speaks this surface: Submit and
// SubmitBatch, Get, List, Cancel, Logs, Events, Watch and the
// event-driven Wait, with IsConflict-style helpers over the error codes.
// The qrioctl command wraps it: submit, list -phase, watch, cancel, logs,
// events, tenants [set], admin durability|snapshot.
//
// # Concurrency
//
// The paper's architecture — one job scheduled at a time, one container
// per node — is the default. Config exposes the concurrent pipeline:
// Concurrency > 1 switches the scheduler to batched dispatch (rank up to
// that many pending jobs per pass in parallel, bind greedily with
// deterministic tie-breaking), NodeConcurrency > 1 lets each node execute
// several containers bounded by its classical CPU capacity, and
// ScoreWorkers caps concurrent scoring calls across the whole batch (a
// shared budget, not per job). Independently, the Meta
// Server memoises canary-simulation and subgraph-matching results per
// (circuit fingerprint, backend, calibration generation), so repeated
// circuits cost one simulation per fleet calibration; re-registering a
// backend invalidates its cached scores.
//
// See the examples directory for runnable end-to-end scenarios and
// cmd/qrio-experiments for the paper's evaluation.
package qrio

import (
	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/apiserver"
	"qrio/internal/cluster/durability"
	"qrio/internal/cluster/state"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/gateway"
	"qrio/internal/graph"
	"qrio/internal/mapomatic"
	"qrio/internal/master"
	"qrio/internal/obs"
	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/qasm"
	"qrio/internal/visualizer"
	"qrio/internal/workload"
)

// Orchestrator is a running QRIO deployment: cluster state, Meta Server,
// Master Server, registry, scheduler, per-node kubelets and the lifecycle
// controller. Create one with New, then Start it.
type Orchestrator = core.QRIO

// Config describes a deployment; Backends is required.
type Config = core.Config

// New assembles an orchestrator from a device fleet.
func New(cfg Config) (*Orchestrator, error) { return core.New(cfg) }

// SubmitRequest is a complete user job: circuit, resources, characteristic
// bounds and selection strategy (the Visualizer's three-step form).
type SubmitRequest = master.SubmitRequest

// Job is a scheduled quantum job with its spec and live status.
type Job = api.QuantumJob

// Result is a finished job's execution record: counts, fidelity, logs and
// the transpiled executable.
type Result = api.Result

// DeviceRequirements bound the device characteristics a job accepts.
type DeviceRequirements = api.DeviceRequirements

// DefaultTenant is the tenant of submissions that name none.
const DefaultTenant = api.DefaultTenant

// TenantQuota bounds one tenant's admitted-but-unfinished work (zero
// values mean unlimited).
type TenantQuota = api.TenantQuota

// TenantQuotaPolicy is a deployment's quota configuration: a default
// quota plus per-tenant overrides (Config.TenantQuotas).
type TenantQuotaPolicy = api.TenantQuotaPolicy

// TenantUsage is one tenant's live usage aggregate as reported by the
// cluster state and GET /v1/tenants.
type TenantUsage = state.TenantUsage

// RetentionPolicy bounds how long terminal jobs stay resident in the hot
// store before the controller archives them (Config.Retention); the zero
// policy keeps everything resident, the pre-archive behaviour.
type RetentionPolicy = state.RetentionPolicy

// DurabilityOptions configure crash-recoverable cluster state
// (Config.Durability): a data directory holding per-shard write-ahead
// logs, periodic compacted snapshots and the archive spill. The zero
// value keeps the deployment fully in-memory.
type DurabilityOptions = durability.Options

// DurabilityStats is the durability subsystem's admin view (WAL lag,
// snapshot age, boot replay statistics, latched errors), served by
// GET /v1/admin/durability.
type DurabilityStats = durability.Stats

// MetricsRegistry is the deployment-wide observability registry
// (Config.Metrics): zero-dependency counters, gauges and histograms with
// a deterministic Prometheus text exposition, served by GET /v1/metrics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty metrics registry. Hand it to
// Config.Metrics so the daemon, simulator and tests share one view.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricFamily is one parsed family from a metrics exposition
// (Client.MetricFamilies).
type MetricFamily = obs.Family

// HealthResponse is the typed GET /v1/health payload: per-component
// statuses for store, scheduler, durability, archive and the scoring
// breaker, plus the overall roll-up and drain flag.
type HealthResponse = gateway.HealthResponse

// TenantConfig is one tenant's live weight + quota override, set through
// PUT /v1/tenants/{name} and applied without a restart.
type TenantConfig = api.TenantConfig

// Strategy selects fidelity- or topology-driven device ranking.
type Strategy = api.Strategy

// Selection strategies.
const (
	StrategyFidelity = api.StrategyFidelity
	StrategyTopology = api.StrategyTopology
)

// Job lifecycle phases. JobSucceeded, JobFailed and JobCancelled are
// terminal.
const (
	JobPending   = api.JobPending
	JobScheduled = api.JobScheduled
	JobRunning   = api.JobRunning
	JobSucceeded = api.JobSucceeded
	JobFailed    = api.JobFailed
	JobCancelled = api.JobCancelled
)

// Backend is one quantum device's vendor calibration: coupling map, error
// rates, coherence times, basis gates and host-node classical capacity.
type Backend = device.Backend

// FleetSpec parameterises the random device generator (paper Table 2).
type FleetSpec = device.FleetSpec

// DefaultFleetSpec returns the paper's 100-device testbed parameters.
func DefaultFleetSpec() FleetSpec { return device.DefaultFleetSpec() }

// GenerateFleet builds the simulated device fleet for a spec.
func GenerateFleet(spec FleetSpec) ([]*Backend, error) { return device.GenerateFleet(spec) }

// UniformBackend builds a single device with a fixed topology and uniform
// error rates — useful for controlled experiments.
func UniformBackend(name string, coupling *Graph, twoQubitErr, oneQubitErr, readoutErr, t1us, t2us float64) (*Backend, error) {
	return device.UniformBackend(name, coupling, twoQubitErr, oneQubitErr, readoutErr, t1us, t2us)
}

// Circuit is the quantum-circuit IR shared across QRIO.
type Circuit = circuit.Circuit

// NewCircuit returns an empty circuit over n qubits (and n classical bits).
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// ParseQASM reads OpenQASM 2.0 source.
func ParseQASM(src string) (*Circuit, error) { return qasm.Parse(src) }

// DumpQASM renders a circuit as OpenQASM 2.0 source.
func DumpQASM(c *Circuit) (string, error) { return qasm.Dump(c) }

// Graph is an undirected topology graph (device coupling maps and user
// topology requests).
type Graph = graph.Graph

// NewGraph returns an empty topology over n qubits.
func NewGraph(n int) *Graph { return graph.New(n) }

// NamedTopology builds one of the built-in topologies: "line", "ring",
// "grid", "full", "heavy-square", "star" or "tree".
func NamedTopology(name string, n int) (*Graph, error) { return graph.Named(name, n) }

// TopologyQASM converts a topology request into the pseudo-circuit QASM
// the Meta Server scores (one cx per requested edge).
func TopologyQASM(g *Graph) (string, error) {
	return qasm.Dump(mapomatic.TopologyCircuit(g))
}

// Workload constructors (the paper's benchmark circuits).
var (
	// BernsteinVazirani builds the n-qubit BV circuit for a secret.
	BernsteinVazirani = workload.BernsteinVazirani
	// GHZ builds an n-qubit GHZ preparation.
	GHZ = workload.GHZ
	// QFT builds the n-qubit quantum Fourier transform.
	QFT = workload.QFT
	// Grover builds the paper's 3-qubit Grover search.
	Grover = workload.Grover
	// QAOARing builds a depth-p QAOA MaxCut circuit on an n-ring.
	QAOARing = workload.QAOARing
)

// Client is the Go client for the unified /v1 gateway: the full job
// lifecycle (Submit single/batch, Get, List with filters and pagination,
// Cancel, Logs, Events, Watch over SSE, event-driven Wait) plus node and
// scoring access. See package qrio/client for details.
type Client = client.Client

// NewClient builds a /v1 gateway client for a daemon base URL.
func NewClient(baseURL string) *Client { return client.New(baseURL) }

// WatchEvent is one streamed cluster change from Client.Watch.
type WatchEvent = client.WatchEvent

// APIError is the structured error the gateway returns; use
// client.IsNotFound / IsConflict / IsInvalid / IsUnschedulable to branch
// on its machine-readable code.
type APIError = client.APIError

// NewGateway returns the unified /v1 API server for an orchestrator; its
// Handler method plugs into net/http. The qrio daemon mounts it at /v1.
func NewGateway(q *Orchestrator) *gateway.Server { return gateway.New(q) }

// NewVisualizer returns the web dashboard server for an orchestrator
// (submission form, cluster and job views, vendor page); its Handler
// method plugs into net/http.
func NewVisualizer(q *Orchestrator) *visualizer.Server { return visualizer.New(q) }

// NewAPIServer returns the cluster REST API server for an orchestrator's
// state; its Handler method plugs into net/http.
func NewAPIServer(q *Orchestrator) *apiserver.Server { return apiserver.New(q.State) }

// NewAPIClient returns a typed client for a remote cluster API.
func NewAPIClient(baseURL string) *apiserver.Client { return apiserver.NewClient(baseURL) }
